package tune

import (
	"math"
	"sync"
	"testing"

	"accelwattch/internal/config"
	"accelwattch/internal/core"
	"accelwattch/internal/isa"
	"accelwattch/internal/ubench"
)

// The tuning flow is expensive, so the package shares one tuned result.
var (
	tuneOnce sync.Once
	tunedTB  *Testbench
	tunedRes *Result
	tunedErr error
)

func sharedTuned(t *testing.T) (*Testbench, *Result) {
	t.Helper()
	tuneOnce.Do(func() {
		tunedTB, tunedErr = NewTestbench(config.Volta(), ubench.Quick)
		if tunedErr != nil {
			return
		}
		tunedRes, tunedErr = Tune(tunedTB, tunedTB.DefaultOptions())
	})
	if tunedErr != nil {
		t.Fatal(tunedErr)
	}
	return tunedTB, tunedRes
}

func TestConstPowerEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning flow")
	}
	_, res := sharedTuned(t)
	cp := res.ConstPower
	// The GV100 ground truth is 32.5 W; Section 4.2 recovers it from
	// cubic fits.
	if cp.ConstW < 27 || cp.ConstW > 42 {
		t.Errorf("constant power %.2f W, true value 32.5 W", cp.ConstW)
	}
	// The legacy linear methodology must under-estimate it.
	if cp.LegacyConstW >= cp.ConstW {
		t.Errorf("legacy linear estimate %.2f should fall below the Eq.(3) estimate %.2f",
			cp.LegacyConstW, cp.ConstW)
	}
	if len(cp.Curves) != 5 {
		t.Fatalf("Figure 2 has 5 curves, got %d", len(cp.Curves))
	}
	for _, c := range cp.Curves {
		if c.FitMAPE > 2 {
			t.Errorf("%s: Eq.(3) fit MAPE %.2f%% (paper: ~1%%)", c.Name, c.FitMAPE)
		}
		if c.Fit.Beta < 0 || c.Fit.Tau < 0 {
			t.Errorf("%s: negative fitted terms %+v", c.Name, c.Fit)
		}
	}
}

func TestDivergenceModelSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning flow")
	}
	_, res := sharedTuned(t)
	byMix := map[core.MixCategory]DivergenceFit{}
	for _, f := range res.DivFits {
		byMix[f.Mix] = f
	}
	// Section 4.5: single-unit integer mixes follow the half-warp
	// (sawtooth) model; multi-unit mixes follow the linear model.
	for _, mix := range []core.MixCategory{core.MixIntAdd, core.MixIntMul, core.MixInt} {
		if !byMix[mix].HalfWarp {
			t.Errorf("%v should select the half-warp model (Figure 4a)", mix)
		}
	}
	for _, mix := range []core.MixCategory{core.MixIntFP, core.MixIntFPSFU, core.MixIntFPDP} {
		if byMix[mix].HalfWarp {
			t.Errorf("%v should select the linear model (Figures 4b/4c)", mix)
		}
	}
	for _, f := range res.DivFits {
		if f.Static32LanesW < f.StaticFirstLaneW {
			t.Errorf("%v: 32-lane static below first-lane static", f.Mix)
		}
		if f.StaticFirstLaneW <= 0 {
			t.Errorf("%v: non-positive first-lane static", f.Mix)
		}
	}
}

func TestIdleSMEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning flow")
	}
	_, res := sharedTuned(t)
	if res.IdleSM.PerIdleSMW <= 0 || res.IdleSM.PerIdleSMW > 1 {
		t.Errorf("idle-SM power %.3f W implausible", res.IdleSM.PerIdleSMW)
	}
	if len(res.IdleSM.Estimates) < 3 {
		t.Errorf("too few idle-SM observations: %d", len(res.IdleSM.Estimates))
	}
}

func TestFermiStartWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning flow")
	}
	_, res := sharedTuned(t)
	// Section 5.4: the model from the Fermi starting point beats the
	// all-ones start for the simulator-driven variants.
	for _, v := range []Variant{SASSSIM, PTXSIM} {
		if res.BestFits[v].Start != StartFermi {
			t.Errorf("%v: adopted start %v, paper adopts the Fermi start", v, res.BestFits[v].Start)
		}
		if res.BestFits[v].TrainMAPE >= res.OtherFits[v].TrainMAPE {
			t.Errorf("%v: best start not better (%.2f vs %.2f)",
				v, res.BestFits[v].TrainMAPE, res.OtherFits[v].TrainMAPE)
		}
	}
}

func TestTunedModelsSane(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning flow")
	}
	_, res := sharedTuned(t)
	for _, v := range Variants() {
		m := res.Model(v)
		if err := m.Validate(); err != nil {
			t.Errorf("%v: %v", v, err)
		}
		if res.BestFits[v].TrainMAPE > 10 {
			t.Errorf("%v: training MAPE %.2f%% too high", v, res.BestFits[v].TrainMAPE)
		}
		// Eq. (14) ordering constraints hold on effective energies.
		for _, oc := range core.OrderConstraints {
			ei := m.EffectiveEnergyPJ(oc[0])
			ej := m.EffectiveEnergyPJ(oc[1])
			if ei > ej*(1+1e-6) {
				t.Errorf("%v: constraint %v <= %v violated (%.2f > %.2f)",
					v, oc[0], oc[1], ei, ej)
			}
		}
	}
}

func TestHWActivityCounterGaps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs device profiles")
	}
	tb, _ := sharedTuned(t)
	b := ubench.DivergenceBench(tb.Arch, tb.Scale, core.MixIntFP, 32)
	w := FromBench(b)
	aHW, err := tb.Activity(w, HW)
	if err != nil {
		t.Fatal(err)
	}
	// Volta exposes no register-file or L1i counters (Table 1 shading).
	if aHW.Counts[core.CompRF] != 0 || aHW.Counts[core.CompICACHE] != 0 {
		t.Error("HW activity must have zero RF and L1i counts")
	}
	aSim, err := tb.Activity(w, SASSSIM)
	if err != nil {
		t.Fatal(err)
	}
	if aSim.Counts[core.CompRF] == 0 {
		t.Error("simulator-driven activity must include RF counts")
	}
	// HYBRID replaces only L2+NoC with the simulator's counters.
	aHy, err := tb.Activity(w, HYBRID)
	if err != nil {
		t.Fatal(err)
	}
	if aHy.Counts[core.CompL2NOC] != aSim.Counts[core.CompL2NOC] {
		t.Error("HYBRID must take L2+NoC activity from the simulator")
	}
	if aHy.Counts[core.CompL1D] != aHW.Counts[core.CompL1D] {
		t.Error("HYBRID must keep the hardware L1 counters")
	}
}

func TestMeasurementCaching(t *testing.T) {
	tb, err := NewTestbench(config.Volta(), ubench.Scale{Iters: 2, Unroll: 1, WarpsPerCTA: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := ubench.OccupancyBench(tb.Arch, tb.Scale, 4)
	w := FromBench(b)
	m1, err := tb.Measure(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := tb.Measure(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("measurements at the same clock should be cached")
	}
	m3, err := tb.Measure(w, 800)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("different clocks must re-measure")
	}
	if math.Abs(m3.AvgPowerW-m1.AvgPowerW) < 1e-9 {
		t.Error("clock change should change power")
	}
	// Trace cache: PTX and SASS are distinct entries.
	tp, err := tb.Trace(w, isa.PTX)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tb.Trace(w, isa.SASS)
	if err != nil {
		t.Fatal(err)
	}
	if tp == ts {
		t.Error("PTX and SASS traces must differ")
	}
}

func TestVariantNames(t *testing.T) {
	want := map[Variant]string{SASSSIM: "SASS_SIM", PTXSIM: "PTX_SIM", HW: "HW", HYBRID: "HYBRID"}
	for v, n := range want {
		if v.String() != n {
			t.Errorf("%d: %q", v, v.String())
		}
	}
	if len(Variants()) != int(NumVariants) {
		t.Error("Variants() incomplete")
	}
}

func TestTemperatureCoefficient(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning flow")
	}
	_, res := sharedTuned(t)
	// The golden device leaks with coefficient 0.016/C; the closed-form
	// three-point fit should recover it closely.
	if res.Temperature == nil {
		t.Fatal("temperature fit missing")
	}
	c := res.Temperature.Coeff
	if c < 0.010 || c > 0.022 {
		t.Errorf("temperature coefficient %.4f/C, hidden truth 0.016/C", c)
	}
	for _, v := range Variants() {
		if res.Model(v).TempCoeff != c {
			t.Errorf("%v: model did not adopt the temperature coefficient", v)
		}
	}
}

func TestFreqSweepPoints(t *testing.T) {
	cases := []struct {
		name  string
		sweep FreqSweep
		want  []float64
	}{
		{"figure-2 ladder", FreqSweep{MinMHz: 800, MaxMHz: 1400, StepMHz: 100},
			[]float64{800, 900, 1000, 1100, 1200, 1300, 1400}},
		{"single point", FreqSweep{MinMHz: 1000, MaxMHz: 1000, StepMHz: 200},
			[]float64{1000}},
		{"step larger than range", FreqSweep{MinMHz: 500, MaxMHz: 600, StepMHz: 200},
			[]float64{500}},
		{"zero step", FreqSweep{MinMHz: 500, MaxMHz: 600, StepMHz: 0}, nil},
		{"negative step", FreqSweep{MinMHz: 500, MaxMHz: 600, StepMHz: -100}, nil},
		{"inverted range", FreqSweep{MinMHz: 600, MaxMHz: 500, StepMHz: 100}, nil},
		{"NaN bound", FreqSweep{MinMHz: math.NaN(), MaxMHz: 600, StepMHz: 100}, nil},
		// A step below one ULP of the endpoints used to make the
		// accumulating loop spin forever (f+step rounds back to f); by-index
		// generation must terminate with the nominal point count instead.
		{"sub-ULP step, min==max", FreqSweep{MinMHz: 2000, MaxMHz: 2000, StepMHz: 1e-13},
			[]float64{2000}},
		{"denormal step, huge count", FreqSweep{MinMHz: 1, MaxMHz: 2, StepMHz: 5e-324}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.sweep.Points()
			if len(got) != len(tc.want) {
				t.Fatalf("Points() = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Points()[%d] = %g, want %g", i, got[i], tc.want[i])
				}
			}
		})
	}
}
