package tune

import "accelwattch/internal/obs"

// Tuning-pipeline telemetry: meter-path robustness counters and QP solver
// stats. Stage durations are covered by obs spans (aw_stage_seconds) placed
// in tune.go and the per-stage warm/replay entry points. All of it is
// observe-only — no tuning decision reads a metric back.
var (
	mMeterReads = obs.Default().Counter("aw_tune_meter_reads_total",
		"Successful power-meter reads (post-retry).")
	mMeterRetries = obs.Default().Counter("aw_tune_meter_retries_total",
		"Additional meter attempts after transient read failures.")
	mMeterFailures = obs.Default().Counter("aw_tune_meter_read_failures_total",
		"Operating points that failed every retry attempt.")
	mSamplesRejected = obs.Default().Counter("aw_tune_meter_samples_rejected_total",
		"Power samples rejected by MAD outlier filtering.")

	mQuarantines = obs.Default().CounterVec("aw_tune_quarantines_total",
		"Workloads and stages quarantined out of the tuning flow, by reason class.",
		"reason")

	mQPSolves = obs.Default().CounterVec("aw_tune_qp_solves_total",
		"QP dynamic-tuning solves, by variant and outcome (ok, fallback).",
		"variant", "outcome")
	mQPIterations = obs.Default().CounterVec("aw_tune_qp_iterations_total",
		"QP solver iterations accumulated, by variant.", "variant")
)

// Quarantine reason classes, bounding the aw_tune_quarantines_total label
// cardinality to a fixed vocabulary (never workload names).
const (
	qcFailedPoints = "failed_points"  // meter retry budget exhausted
	qcDVFSHoles    = "dvfs_holes"     // too few surviving DVFS ladder points
	qcDropped      = "dropped"        // microbenchmark dropped from the QP tuning set
	qcNonPhysical  = "non_physical"   // non-finite or non-positive measured power
	qcNonFinite    = "non_finite_row" // NaN/Inf leaked into a QP row
	qcQPSolver     = "qp_solver"      // QP solver failed; start-point fallback
	qcStaticFit    = "static_fit"     // divergence/idle-SM static fit failed
	qcTemperature  = "temperature"    // temperature ladder failed or implausible
	qcManual       = "manual"         // external callers of Quarantine
)
