package tune

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"

	"accelwattch/internal/config"
	"accelwattch/internal/faults"
	"accelwattch/internal/obs"
	"accelwattch/internal/shard"
	"accelwattch/internal/ubench"
)

// TaskMeasure is the shard task kind for one operating-point measurement.
const TaskMeasure = "tune/measure"

// RemoteCaller is the slice of shard.Dispatcher the testbench needs — an
// interface so tests can fake placements without a fleet.
type RemoteCaller interface {
	Do(ctx context.Context, t shard.Task) ([]byte, error)
}

// measureSpec is the wire form of one point measurement. Fingerprint pins
// the configuration the reading depends on: a worker built differently
// would compute different bytes, so it must refuse the task (Unsupported)
// rather than answer plausibly and wrongly.
type measureSpec struct {
	Workload    string  `json:"workload"`
	ClockMHz    float64 `json:"clock_mhz"`
	Fingerprint string  `json:"fingerprint"`
}

// Fingerprint summarises everything a point measurement is a function of
// besides (workload, clock): architecture, workload scale, the meter's
// fault profile, and the measurement policy. Coordinator and worker must
// agree on it exactly for remote placement to preserve bit-identity.
func (tb *Testbench) Fingerprint() string {
	// A FaultyMeter with a disabled profile is a documented bit-identical
	// pass-through, so it fingerprints as the clean device — a coordinator
	// that never wrapped its meter and a worker started with "-faults off"
	// agree.
	meter := "clean"
	if fm, ok := tb.Meter.(*faults.FaultyMeter); ok {
		if p := fm.FaultProfile(); p.Enabled() {
			meter = fmt.Sprintf("%+v", p)
		}
	}
	return fmt.Sprintf("arch=%s|scale=%+v|meter=%s|policy=%+v",
		tb.Arch.Name, tb.Scale, meter, tb.Policy.normalized())
}

// UseShards installs a shard dispatcher as the testbench's measurement
// placement layer: Measure offloads each operating point to a remote worker
// replica when one is reachable, and computes it in process otherwise. ctx
// scopes the remote calls — cancel it on shutdown and in-flight placements
// abort as "canceled" without tripping breakers or firing pending retries.
//
// Call before creating replicas; Replicate propagates the dispatcher. The
// local fallback is Measure's own in-process path, not a dispatcher-level
// mux — the fallback runs inside the artifact store's singleflight slot the
// point already holds, so no re-entrant store access can deadlock.
func (tb *Testbench) UseShards(ctx context.Context, d RemoteCaller) {
	if ctx == nil {
		ctx = context.Background()
	}
	tb.remote = d
	tb.remoteCtx = ctx
}

// resolvePoint decides where one operating point is measured. Remote
// placement is an accelerator, never an authority: only a well-formed
// PointOutcome is trusted from the wire, and every failure class — open
// breakers, exhausted retries, capability misses, even deterministic remote
// task errors — falls back to the local path, which reproduces the exact
// outcome (and exact error values) an all-local run would have produced.
func (tb *Testbench) resolvePoint(w Workload, clockMHz float64) (PointOutcome, error) {
	if tb.remote == nil {
		return tb.MeasurePoint(w, clockMHz)
	}
	if err := tb.remoteCtx.Err(); err != nil {
		return PointOutcome{}, err
	}
	spec, err := json.Marshal(measureSpec{
		Workload: w.Name, ClockMHz: clockMHz, Fingerprint: tb.Fingerprint(),
	})
	if err != nil {
		return PointOutcome{}, fmt.Errorf("tune: marshalling measure spec: %w", err)
	}
	sp := obs.StartSpan("tune/measure/remote").WithWorker(tb.Worker).WithDetail(w.Name)
	body, err := tb.remote.Do(tb.remoteCtx, shard.Task{
		Kind: TaskMeasure,
		Key:  fmt.Sprintf("%s@%.0f", w.Name, clockMHz),
		Spec: spec,
	})
	sp.End()
	if err != nil {
		if cerr := tb.remoteCtx.Err(); cerr != nil {
			// Shutdown, not a placement failure: surface the cancellation
			// instead of silently measuring a point the run no longer wants.
			return PointOutcome{}, cerr
		}
		return tb.MeasurePoint(w, clockMHz)
	}
	var out PointOutcome
	if err := json.Unmarshal(body, &out); err != nil || (out.M == nil && out.ErrMsg == "") {
		// A malformed or empty outcome means a worker we don't understand;
		// trust the local path instead.
		return tb.MeasurePoint(w, clockMHz)
	}
	return out, nil
}

// RegisterMeasureTask installs the worker-side handler for TaskMeasure on
// mux: specs resolve against reg by workload name, fingerprints must match
// the serving testbench exactly, and outcomes are memoised per point (see
// MeasurePoint) so redelivered tasks replay rather than re-measure.
//
// The worker serves tasks concurrently (up to its MaxInflight), but a
// testbench's device carries single-threaded mutable state — clocks,
// temperature — so the handler borrows a worker-private replica per
// in-flight measurement, exactly as the execution engine hands each of its
// workers one. Replicas share the artifact store and per-point fault state,
// so which replica measures a point can never change its bytes.
func RegisterMeasureTask(mux *shard.Mux, tb *Testbench, reg map[string]Workload) {
	fp := tb.Fingerprint()
	n := runtime.GOMAXPROCS(0)
	pool := make(chan *Testbench, n)
	pool <- tb
	for i := 1; i < n; i++ {
		r, err := tb.Replicate()
		if err != nil {
			// A smaller pool only reduces concurrency, never correctness.
			break
		}
		r.Worker = i
		pool <- r
	}
	mux.Register(TaskMeasure, func(ctx context.Context, spec []byte) ([]byte, error) {
		var ms measureSpec
		if err := json.Unmarshal(spec, &ms); err != nil {
			return nil, shard.Taskf("tune: decoding measure spec: %v", err)
		}
		if ms.Fingerprint != fp {
			return nil, shard.Unsupportedf("tune: fingerprint mismatch (worker %q, task %q)", fp, ms.Fingerprint)
		}
		w, ok := reg[ms.Workload]
		if !ok {
			return nil, shard.Unsupportedf("tune: workload %q not in worker registry", ms.Workload)
		}
		var r *Testbench
		select {
		case r = <-pool:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		out, err := r.MeasurePoint(w, ms.ClockMHz)
		pool <- r
		if err != nil {
			// Hard failure (trace, clock range): deterministic, travels as
			// a task error with the same text the local path would produce.
			return nil, shard.Taskf("%v", err)
		}
		return json.Marshal(out)
	})
}

// StandardWorkloads enumerates every workload the tuning flow's Measure
// path can ask for — the 102-microbenchmark suite, the DVFS ladder, the
// divergence y-sweeps, and the occupancy ladders — keyed by name, for a
// worker's task registry. A workload missing here merely declines remote
// placement (the coordinator measures it locally); it can never corrupt a
// result.
func StandardWorkloads(arch *config.Arch, sc ubench.Scale) map[string]Workload {
	reg := make(map[string]Workload)
	add := func(b ubench.Bench) {
		w := FromBench(b)
		if _, dup := reg[w.Name]; !dup {
			reg[w.Name] = w
		}
	}
	for _, b := range ubench.MustSuite(arch, sc) {
		add(b)
	}
	for _, b := range ubench.DVFSSuite(arch, sc) {
		add(b)
	}
	for _, mix := range ubench.DivergenceMixes(arch) {
		for y := 1; y <= 32; y++ {
			add(ubench.DivergenceBench(arch, sc, mix, y))
		}
	}
	n := arch.NumSMs
	for _, k := range []int{n, n / 8, n / 4, n / 2, 3 * n / 4} {
		if k <= 0 || k > n {
			continue
		}
		add(ubench.OccupancyBench(arch, sc, k))
		add(ubench.OccupancyBenchFP(arch, sc, k))
	}
	return reg
}
