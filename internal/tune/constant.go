package tune

import (
	"fmt"

	"accelwattch/internal/obs"
	"accelwattch/internal/qp"
	"accelwattch/internal/stats"
	"accelwattch/internal/ubench"
)

// FreqSweep describes the clock ladder used for the DVFS experiments. The
// default covers the GV100's supported range as in Figure 2.
type FreqSweep struct {
	MinMHz, MaxMHz, StepMHz float64
}

// DefaultSweep returns a 200 MHz-step ladder inside the device's range.
func DefaultSweep(minMHz, maxMHz float64) FreqSweep {
	return FreqSweep{MinMHz: minMHz, MaxMHz: maxMHz, StepMHz: 200}
}

// Points lists the sweep frequencies.
func (fs FreqSweep) Points() []float64 {
	var out []float64
	for f := fs.MinMHz; f <= fs.MaxMHz+1e-9; f += fs.StepMHz {
		out = append(out, f)
	}
	return out
}

// DVFSCurve is one workload's frequency sweep with its Eq. (3) fit —
// the raw material of Figure 2.
type DVFSCurve struct {
	Name    string
	FreqGHz []float64
	PowerW  []float64
	Fit     qp.CubicFit
	FitMAPE float64 // how well Eq. (3) matches the measurements
	LineFit qp.LinearFit
}

// ConstPowerResult is the outcome of the Section 4.2 methodology.
type ConstPowerResult struct {
	Curves []DVFSCurve
	// ConstW is the estimated constant power: the mean y-intercept of
	// the Eq. (3) fits (32.5 W on the paper's GV100).
	ConstW float64
	// LegacyConstW is what the GPUWattch linear-extrapolation
	// methodology would report — negative on DVFS-capable GPUs.
	LegacyConstW float64
}

// EstimateConstPower runs the five DVFS workloads of Figure 2 across the
// frequency ladder, fits each to Eq. (3), and estimates constant power from
// the y-intercepts. It also reports the (broken) legacy linear estimate for
// the GPUWattch comparison.
func (tb *Testbench) EstimateConstPower(sweep FreqSweep) (*ConstPowerResult, error) {
	return tb.Sequential().EstimateConstPower(sweep)
}

// EstimateConstPower warms every (workload, frequency) operating point of
// the DVFS ladder across the worker pool, then replays the Section 4.2
// fitting flow against the memoised measurements.
func (ex *Exec) EstimateConstPower(sweep FreqSweep) (*ConstPowerResult, error) {
	tb := ex.TB()
	benches := ubench.DVFSSuite(tb.Arch, tb.Scale)
	var tasks []func(*Testbench) error
	for _, b := range benches {
		w := FromBench(b)
		for _, mhz := range sweep.Points() {
			tasks = append(tasks, func(r *Testbench) error {
				_, err := r.Measure(w, mhz)
				return err
			})
		}
	}
	sp := obs.StartSpan("tune/const_power/warm")
	err := ex.Warm(tasks)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = obs.StartSpan("tune/const_power/replay")
	defer sp.End()
	return tb.estimateConstPower(sweep, benches)
}

func (tb *Testbench) estimateConstPower(sweep FreqSweep, benches []ubench.Bench) (*ConstPowerResult, error) {
	res := &ConstPowerResult{}
	var intercepts, lineIntercepts []float64
	for _, b := range benches {
		w := FromBench(b)
		var fs, ps []float64
		for _, mhz := range sweep.Points() {
			m, err := tb.Measure(w, mhz)
			if err != nil {
				if IsMeasurementFailure(err) {
					// Skip the failed operating point; the fit can
					// survive holes in the ladder.
					continue
				}
				return nil, err
			}
			if !stats.AllFinite(m.AvgPowerW) {
				continue
			}
			fs = append(fs, mhz/1000)
			ps = append(ps, m.AvgPowerW)
		}
		// Eq. (3) has 3 parameters; demand at least one extra point so a
		// degraded sweep cannot produce an exactly-interpolating fit with
		// a meaningless intercept.
		if len(fs) < 4 {
			tb.quarantine(w.Name, fmt.Sprintf("only %d/%d DVFS points survived", len(fs), len(sweep.Points())), qcDVFSHoles)
			continue
		}
		fit, err := tb.fitCubic(fs, ps)
		if err != nil {
			return nil, fmt.Errorf("tune: DVFS fit for %s: %w", b.Name, err)
		}
		lfit, err := tb.fitLinear(fs, ps)
		if err != nil {
			return nil, err
		}
		res.Curves = append(res.Curves, DVFSCurve{
			Name:    b.Name,
			FreqGHz: fs,
			PowerW:  ps,
			Fit:     fit,
			FitMAPE: qp.FitMAPE(fit.Eval, fs, ps),
			LineFit: lfit,
		})
		intercepts = append(intercepts, fit.Const)
		lineIntercepts = append(lineIntercepts, lfit.Intercept)
	}
	if len(intercepts) == 0 {
		return nil, fmt.Errorf("tune: no DVFS workload survived measurement; cannot estimate constant power")
	}
	res.ConstW = stats.Mean(intercepts)
	res.LegacyConstW = stats.Mean(lineIntercepts)
	if res.ConstW <= 0 {
		return nil, fmt.Errorf("tune: constant power estimate %.2f W is non-positive; Eq. (3) fit failed", res.ConstW)
	}
	return res, nil
}
