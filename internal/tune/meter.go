package tune

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"accelwattch/internal/config"
	"accelwattch/internal/faults"
	"accelwattch/internal/obs"
	"accelwattch/internal/qp"
	"accelwattch/internal/silicon"
	"accelwattch/internal/stats"
	"accelwattch/internal/trace"
	"accelwattch/internal/ubench"
)

// MeterPolicy governs how the testbench reads its power meter. The default
// policy is a single read per operating point with a couple of retries — on
// a clean meter it reproduces the historical pipeline bit for bit. The
// hardened policy trades measurement time for robustness and is installed
// automatically when a fault profile is active.
type MeterPolicy struct {
	// Repeats is the number of full measurements taken per operating
	// point; the reported power is the median over the pooled samples.
	// 1 preserves single-read semantics exactly.
	Repeats int

	// MaxRetries is how many additional attempts a transiently-failed
	// read gets before the operating point is declared failed.
	MaxRetries int

	// RetryBackoff is the initial wait between retries; it doubles per
	// attempt (real NVML timeouts cluster, so immediate retries lose).
	RetryBackoff time.Duration

	// QuarantineAfter is the number of failed operating points a
	// workload tolerates before it is quarantined: further measurements
	// fail fast with ErrQuarantined and the tuning flow proceeds over
	// the surviving microbenchmarks.
	QuarantineAfter int

	// Robust selects the Huber/trimmed variants of the Eq. (3) fits and
	// MAD-based rejection of outlier samples inside each measurement.
	Robust bool

	// OutlierK is the MAD multiple beyond which pooled samples are
	// rejected when Robust aggregation runs (0 disables rejection).
	OutlierK float64
}

// DefaultMeterPolicy is the clean-meter configuration: one read per point,
// two retries, no robust machinery. With a fault-free meter it leaves every
// measurement — and therefore every tuned coefficient — bit-identical to
// the unhardened pipeline.
func DefaultMeterPolicy() MeterPolicy {
	return MeterPolicy{Repeats: 1, MaxRetries: 2, RetryBackoff: time.Millisecond, QuarantineAfter: 2}
}

// HardenedMeterPolicy is the configuration for measuring through a faulty
// meter: median-of-5 reads, deeper retry budget, robust fits, and MAD
// sample rejection.
func HardenedMeterPolicy() MeterPolicy {
	return MeterPolicy{
		Repeats:         5,
		MaxRetries:      4,
		RetryBackoff:    time.Millisecond,
		QuarantineAfter: 3,
		Robust:          true,
		OutlierK:        6,
	}
}

// normalized clamps degenerate knob values so a zero policy behaves like
// the default.
func (p MeterPolicy) normalized() MeterPolicy {
	if p.Repeats < 1 {
		p.Repeats = 1
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.QuarantineAfter < 1 {
		p.QuarantineAfter = 1
	}
	return p
}

// Measurement-path error classes. Callers skip workloads whose errors match
// these (via IsMeasurementFailure) and abort on anything else.
var (
	// ErrMeasurement marks an operating point that failed all retries.
	ErrMeasurement = errors.New("tune: measurement failed")
	// ErrQuarantined marks workloads removed from the tuning flow after
	// repeated measurement failures.
	ErrQuarantined = errors.New("tune: workload quarantined")
)

// IsMeasurementFailure reports whether err is a meter-path failure the
// tuning flow should degrade around (skip the point or the workload) rather
// than abort on.
func IsMeasurementFailure(err error) bool {
	return errors.Is(err, ErrMeasurement) || errors.Is(err, ErrQuarantined)
}

// UseMeter replaces the measurement path (for example with a
// faults.FaultyMeter wrapping the device) and installs a meter policy. It
// must be called before the first measurement and before any replicas are
// made; cached measurements and profiles are cleared, traces and simulation
// results are kept (they do not pass through the meter).
func (tb *Testbench) UseMeter(m faults.Meter, p MeterPolicy) {
	tb.Meter = m
	tb.Policy = p
	tb.arts.measures.Reset()
	tb.arts.points.Reset()
	tb.arts.profiles.Reset()
	tb.arts.mu.Lock()
	tb.arts.quarantined = make(map[string]string)
	tb.arts.failCount = make(map[string]int)
	tb.arts.mu.Unlock()
}

// NewFaultyTestbench builds a testbench whose measurements flow through a
// fault-injected meter, with the hardened meter policy installed.
func NewFaultyTestbench(arch *config.Arch, sc ubench.Scale, prof faults.Profile) (*Testbench, error) {
	tb, err := NewTestbench(arch, sc)
	if err != nil {
		return nil, err
	}
	fm, err := faults.NewFaultyMeter(tb.Device, prof)
	if err != nil {
		return nil, err
	}
	tb.UseMeter(fm, HardenedMeterPolicy())
	return tb, nil
}

// Quarantined returns the workloads removed from the tuning flow, sorted,
// as "name: reason" strings.
func (tb *Testbench) Quarantined() []string {
	a := tb.arts
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.quarantined))
	for name, reason := range a.quarantined {
		out = append(out, name+": "+reason)
	}
	sort.Strings(out)
	return out
}

// Quarantine records a workload as removed from the tuning flow.
func (tb *Testbench) Quarantine(name, reason string) {
	tb.quarantine(name, reason, qcManual)
}

// quarantine is Quarantine with a bounded reason class for the
// aw_tune_quarantines_total counter; only first insertions count, so the
// metric tracks distinct quarantined workloads/stages per class.
func (tb *Testbench) quarantine(name, reason, class string) {
	a := tb.arts
	a.mu.Lock()
	_, dup := a.quarantined[name]
	if !dup {
		a.quarantined[name] = reason
	}
	a.mu.Unlock()
	if !dup {
		mQuarantines.With(class).Inc()
		obs.Emit(obs.Event{Kind: obs.KindQuarantine, Workload: name, Reason: reason, Detail: class})
	}
}

// noteFailure counts a failed operating point against a workload and
// quarantines it once the budget is exhausted. The reason reports only the
// count — each failed point is memoised by the artifact store, so the count
// at quarantine is always exactly QuarantineAfter regardless of the order
// replicas hit the points, keeping the reason string schedule-independent.
func (tb *Testbench) noteFailure(name string, p MeterPolicy) {
	mMeterFailures.Inc()
	a := tb.arts
	a.mu.Lock()
	a.failCount[name]++
	quarantined := a.failCount[name] >= p.QuarantineAfter
	var dup bool
	var reason string
	if quarantined {
		if _, dup = a.quarantined[name]; !dup {
			reason = fmt.Sprintf("%d failed operating points", a.failCount[name])
			a.quarantined[name] = reason
		}
	}
	a.mu.Unlock()
	if quarantined && !dup {
		mQuarantines.With(qcFailedPoints).Inc()
		obs.Emit(obs.Event{Kind: obs.KindQuarantine, Workload: name, Reason: reason, Detail: qcFailedPoints})
	}
}

// runWithRetry performs one measurement attempt with transient-error
// retries and exponential backoff, reporting how many meter reads it spent.
// Non-transient errors (bad traces, clock out of range) surface immediately.
func (tb *Testbench) runWithRetry(kt *trace.KernelTrace, p MeterPolicy) (m *silicon.Measurement, attempts int, err error) {
	backoff := p.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= p.MaxRetries; attempt++ {
		if attempt > 0 {
			mMeterRetries.Inc()
			if backoff > 0 {
				time.Sleep(backoff)
				backoff *= 2
			}
		}
		attempts++
		m, err := tb.Meter.Run(kt)
		if err == nil {
			if math.IsNaN(m.AvgPowerW) || math.IsInf(m.AvgPowerW, 0) || m.AvgPowerW <= 0 {
				// A non-physical reading is as useless as a failed
				// one; retry it like a transient.
				lastErr = fmt.Errorf("non-physical power reading %g W", m.AvgPowerW)
				continue
			}
			mMeterReads.Inc()
			return m, attempts, nil
		}
		if !faults.IsTransient(err) {
			return nil, attempts, err
		}
		lastErr = err
	}
	return nil, attempts, fmt.Errorf("all %d attempts failed: %w", p.MaxRetries+1, lastErr)
}

// profileWithRetry reads hardware counters with the same transient-error
// retry discipline as power measurements (real profilers time out too).
func (tb *Testbench) profileWithRetry(kt *trace.KernelTrace, p MeterPolicy) (*silicon.Counters, error) {
	backoff := p.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= p.MaxRetries; attempt++ {
		if attempt > 0 {
			mMeterRetries.Inc()
			if backoff > 0 {
				time.Sleep(backoff)
				backoff *= 2
			}
		}
		c, err := tb.Meter.Profile(kt)
		if err == nil {
			mMeterReads.Inc()
			return c, nil
		}
		if !faults.IsTransient(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("all %d attempts failed: %w", p.MaxRetries+1, lastErr)
}

// measurePoint reads one operating point under the policy: Repeats
// independent reads (each with its own retry budget), aggregated by the
// median, with optional MAD rejection of outlier samples. With Repeats=1
// and no rejection the single read is returned untouched, keeping the
// clean-meter path bit-identical to the historical one. attempts totals the
// meter reads spent across all repeats and retries — the ledger's
// measurement-effort record.
func (tb *Testbench) measurePoint(kt *trace.KernelTrace, p MeterPolicy) (m *silicon.Measurement, attempts int, err error) {
	var good []*silicon.Measurement
	var lastErr error
	for r := 0; r < p.Repeats; r++ {
		m, n, err := tb.runWithRetry(kt, p)
		attempts += n
		if err != nil {
			lastErr = err
			continue
		}
		good = append(good, m)
	}
	if len(good) == 0 {
		return nil, attempts, lastErr
	}
	if len(good) == 1 && p.OutlierK <= 0 {
		return good[0], attempts, nil
	}
	return aggregateMeasurements(good, p), attempts, nil
}

// aggregateMeasurements pools the samples of repeated reads, optionally
// rejects outliers at OutlierK robust sigmas from the pooled median, and
// reports the median of the surviving samples.
func aggregateMeasurements(ms []*silicon.Measurement, p MeterPolicy) *silicon.Measurement {
	out := &silicon.Measurement{
		Cycles:   ms[0].Cycles,
		RuntimeS: ms[0].RuntimeS,
		ClockMHz: ms[0].ClockMHz,
	}
	var pool []float64
	for _, m := range ms {
		pool = append(pool, m.Samples...)
	}
	if len(pool) == 0 {
		// Degenerate: no sample detail, fall back to per-read averages.
		for _, m := range ms {
			pool = append(pool, m.AvgPowerW)
		}
	}
	if p.OutlierK > 0 && len(pool) >= 4 {
		med, mad, err := stats.MAD(pool)
		if err == nil && mad > 0 {
			sigma := 1.4826 * mad
			kept := pool[:0]
			for _, s := range pool {
				if math.Abs(s-med) <= p.OutlierK*sigma {
					kept = append(kept, s)
				}
			}
			if len(kept) > 0 {
				mSamplesRejected.Add(float64(len(pool) - len(kept)))
				pool = kept
			}
		}
	}
	out.Samples = pool
	if med, err := stats.Median(pool); err == nil {
		out.AvgPowerW = med
	}
	return out
}

// fitCubic dispatches between the plain and robust Eq. (3) fits per the
// active policy.
func (tb *Testbench) fitCubic(fGHz, powerW []float64) (qp.CubicFit, error) {
	if tb.Policy.Robust {
		return qp.FitCubicNoQuadRobust(fGHz, powerW)
	}
	return qp.FitCubicNoQuad(fGHz, powerW)
}

// fitLinear is the legacy-methodology analogue of fitCubic.
func (tb *Testbench) fitLinear(fGHz, powerW []float64) (qp.LinearFit, error) {
	if tb.Policy.Robust {
		return qp.FitLinearRobust(fGHz, powerW)
	}
	return qp.FitLinear(fGHz, powerW)
}
