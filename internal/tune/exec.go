package tune

import (
	"context"

	"accelwattch/internal/engine"
	"accelwattch/internal/obs"
)

// Exec is a testbench bound to an execution context: a worker pool of
// testbench replicas plus a cancellation context. Tuning and evaluation
// stages fan their measurement work out through it, then replay their
// (unchanged, sequential) model-fitting logic against the now-warm artifact
// store — which is what makes a parallel run bit-identical to a sequential
// one at any worker count.
type Exec struct {
	ctx  context.Context
	pool *engine.Pool[*Testbench]

	// span, when set via WithSpan, is the parent (typically the session
	// root) that stage spans opened through StageSpan nest under.
	span *obs.Span
}

// NewExec builds an execution engine over tb with the given worker count
// (values < 1 mean 1). A nil ctx means context.Background(). Workers beyond
// the first get replicas of tb via Testbench.Replicate; call it after
// UseMeter so replicas wrap the installed meter. Each replica is stamped
// with its pool index (tb itself is worker 0) so measurement spans land on
// per-worker trace tracks.
func NewExec(ctx context.Context, tb *Testbench, workers int) (*Exec, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	next := 0
	pool, err := engine.NewPool(tb, workers, func() (*Testbench, error) {
		r, err := tb.Replicate()
		if err != nil {
			return nil, err
		}
		next++
		r.Worker = next
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return &Exec{ctx: ctx, pool: pool}, nil
}

// Sequential wraps the testbench in a single-worker engine, the drop-in
// equivalent of the historical direct-call path.
func (tb *Testbench) Sequential() *Exec {
	return &Exec{ctx: context.Background(), pool: engine.PoolOf(tb)}
}

// Ctx returns the engine's cancellation context.
func (ex *Exec) Ctx() context.Context { return ex.ctx }

// WithSpan parents all stage spans this engine opens under sp — callers
// holding a session root span install it here so the exported trace nests
// session → stage → workload. Returns ex for chaining; nil clears it.
func (ex *Exec) WithSpan(sp *obs.Span) *Exec {
	ex.span = sp
	return ex
}

// StageSpan opens a pipeline-stage span, as a child of the engine's parent
// span when one is installed and as a root span otherwise.
func (ex *Exec) StageSpan(name string) *obs.Span {
	if ex.span != nil {
		return ex.span.Child(name)
	}
	return obs.StartSpan(name)
}

// TB returns the primary testbench (the one the engine was built from).
func (ex *Exec) TB() *Testbench { return ex.pool.Primary() }

// Workers returns the pool size.
func (ex *Exec) Workers() int { return ex.pool.Workers() }

// Map fans fn over items across ex's replica pool. Results arrive in input
// order and the reported error on failure is the lowest-index one — exactly
// what a sequential loop over items would produce.
func Map[T, V any](ex *Exec, items []T, fn func(*Testbench, T) (V, error)) ([]V, error) {
	return engine.Map(ex.ctx, ex.pool, items, func(_ context.Context, tb *Testbench, it T) (V, error) {
		return fn(tb, it)
	})
}

// Warm fans the tasks out across the pool to populate the artifact store.
// Measurement failures (ErrMeasurement, ErrQuarantined) are swallowed —
// they are memoised per key, and the sequential replay that follows makes
// the skip-or-abort decision exactly where it always did. Any other error
// cancels the remaining tasks and is returned.
func (ex *Exec) Warm(tasks []func(*Testbench) error) error {
	if len(tasks) == 0 {
		return nil
	}
	_, err := engine.Map(ex.ctx, ex.pool, tasks, func(_ context.Context, tb *Testbench, task func(*Testbench) error) (struct{}, error) {
		if err := task(tb); err != nil && !IsMeasurementFailure(err) {
			return struct{}{}, err
		}
		return struct{}{}, nil
	})
	return err
}
