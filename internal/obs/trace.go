package obs

import "time"

// SpanRecord is one completed stage timing. Stage names are hierarchical
// ("tune/const_power/warm"); Worker is the engine replica index the work
// ran on, or -1 when the span is not attributed to a worker. ID is unique
// within the registry and Parent links a child span to the span that
// started it (0 means the span has no recorded parent); Detail carries
// unbounded-cardinality context — a workload name, an operating point —
// that must never become a metric label but belongs in the flight
// recorder and the exported trace.
type SpanRecord struct {
	ID            int64   `json:"id"`
	Parent        int64   `json:"parent,omitempty"`
	Name          string  `json:"name"`
	Detail        string  `json:"detail,omitempty"`
	Worker        int     `json:"worker"`
	StartUnixNano int64   `json:"start_unix_nano"`
	DurationS     float64 `json:"duration_s"`
}

// Span is an in-flight stage timing. Obtain one from StartSpan (or from a
// parent via Child), optionally attribute it with WithWorker/WithDetail,
// and End it exactly once. A nil Span (from a disabled registry) is safe
// to use: every method is a no-op and Child returns nil.
type Span struct {
	reg    *Registry
	id     int64
	parent int64
	name   string
	detail string
	worker int
	start  time.Time
	ended  bool
}

// stageSeconds lazily registers the histogram every ended span feeds, so
// stage timings show up in /metrics without per-call-site plumbing.
func (r *Registry) stageSeconds() *HistogramVec {
	return r.HistogramVec("aw_stage_seconds",
		"Wall-clock duration of pipeline stages and sub-stages.",
		ExpBuckets(0.0001, 4, 12), "stage")
}

// traceDropped lazily registers the counter of span records lost to ring
// overflow, so a wrapped flight recorder is visible instead of silent.
func (r *Registry) traceDropped() *Counter {
	return r.Counter("aw_trace_dropped_total",
		"Span records overwritten after the bounded span ring filled.")
}

// StartSpan begins timing a stage. Returns nil when the registry is
// disabled; nil spans no-op on End, so call sites need no guards.
func (r *Registry) StartSpan(name string) *Span {
	if r.off() {
		return nil
	}
	return &Span{reg: r, id: r.spanID.Add(1), name: name, worker: -1, start: time.Now()}
}

// StartSpan begins a stage timing on the default registry.
func StartSpan(name string) *Span { return defaultRegistry.StartSpan(name) }

// Child begins a span whose record links back to s, building the
// session → stage → workload → attempt hierarchy the trace export renders.
// A nil parent (disabled registry) yields a nil child.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.reg.StartSpan(name)
	if c != nil {
		c.parent = s.id
	}
	return c
}

// WithWorker attributes the span to an engine worker (replica index).
func (s *Span) WithWorker(w int) *Span {
	if s != nil {
		s.worker = w
	}
	return s
}

// WithDetail attaches free-form context (a workload name, an operating
// point). Detail is recorded on the span and exported in traces but never
// becomes a metric label — aw_stage_seconds keys on the stage name only,
// keeping its cardinality bounded.
func (s *Span) WithDetail(d string) *Span {
	if s != nil {
		s.detail = d
	}
	return s
}

// End completes the span: it appends the record to the registry's bounded
// ring (oldest records are overwritten once DefaultSpanCapacity is
// reached, counted by aw_trace_dropped_total) and observes the duration
// into aw_stage_seconds{stage=name}. Double-End is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := time.Since(s.start).Seconds()
	rec := SpanRecord{
		ID:            s.id,
		Parent:        s.parent,
		Name:          s.name,
		Detail:        s.detail,
		Worker:        s.worker,
		StartUnixNano: s.start.UnixNano(),
		DurationS:     d,
	}
	r := s.reg
	dropped := false
	r.spanMu.Lock()
	if len(r.spans) < r.spanCapacity {
		r.spans = append(r.spans, rec)
	} else {
		r.spans[r.spanNext] = rec
		r.spanNext = (r.spanNext + 1) % r.spanCapacity
		dropped = true
	}
	r.spanTotal++
	r.spanMu.Unlock()
	if dropped {
		r.traceDropped().Inc()
	}
	r.stageSeconds().With(s.name).Observe(d)
}

// Spans returns the retained span records, oldest first, plus the total
// number ever recorded (which exceeds len(records) once the ring wrapped).
func (r *Registry) Spans() (records []SpanRecord, total int64) {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	records = make([]SpanRecord, 0, len(r.spans))
	records = append(records, r.spans[r.spanNext:]...)
	records = append(records, r.spans[:r.spanNext]...)
	return records, r.spanTotal
}
