package obs

import "time"

// SpanRecord is one completed stage timing. Stage names are hierarchical
// ("tune/const_power/warm"); Worker is the engine replica index the work
// ran on, or -1 when the span is not attributed to a worker.
type SpanRecord struct {
	Name          string  `json:"name"`
	Worker        int     `json:"worker"`
	StartUnixNano int64   `json:"start_unix_nano"`
	DurationS     float64 `json:"duration_s"`
}

// Span is an in-flight stage timing. Obtain one from StartSpan, optionally
// attribute it with WithWorker, and End it exactly once. A nil Span (from a
// disabled registry) is safe to use: every method is a no-op.
type Span struct {
	reg    *Registry
	name   string
	worker int
	start  time.Time
	ended  bool
}

// stageSeconds lazily registers the histogram every ended span feeds, so
// stage timings show up in /metrics without per-call-site plumbing.
func (r *Registry) stageSeconds() *HistogramVec {
	return r.HistogramVec("aw_stage_seconds",
		"Wall-clock duration of pipeline stages and sub-stages.",
		ExpBuckets(0.0001, 4, 12), "stage")
}

// StartSpan begins timing a stage. Returns nil when the registry is
// disabled; nil spans no-op on End, so call sites need no guards.
func (r *Registry) StartSpan(name string) *Span {
	if r.off() {
		return nil
	}
	return &Span{reg: r, name: name, worker: -1, start: time.Now()}
}

// StartSpan begins a stage timing on the default registry.
func StartSpan(name string) *Span { return defaultRegistry.StartSpan(name) }

// WithWorker attributes the span to an engine worker (replica index).
func (s *Span) WithWorker(w int) *Span {
	if s != nil {
		s.worker = w
	}
	return s
}

// End completes the span: it appends the record to the registry's bounded
// ring (oldest records are overwritten once DefaultSpanCapacity is
// reached) and observes the duration into aw_stage_seconds{stage=name}.
// Double-End is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := time.Since(s.start).Seconds()
	rec := SpanRecord{
		Name:          s.name,
		Worker:        s.worker,
		StartUnixNano: s.start.UnixNano(),
		DurationS:     d,
	}
	r := s.reg
	r.spanMu.Lock()
	if len(r.spans) < r.spanCapacity {
		r.spans = append(r.spans, rec)
	} else {
		r.spans[r.spanNext] = rec
		r.spanNext = (r.spanNext + 1) % r.spanCapacity
	}
	r.spanTotal++
	r.spanMu.Unlock()
	r.stageSeconds().With(s.name).Observe(d)
}

// Spans returns the retained span records, oldest first, plus the total
// number ever recorded (which exceeds len(records) once the ring wrapped).
func (r *Registry) Spans() (records []SpanRecord, total int64) {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	records = make([]SpanRecord, 0, len(r.spans))
	records = append(records, r.spans[r.spanNext:]...)
	records = append(records, r.spans[:r.spanNext]...)
	return records, r.spanTotal
}
