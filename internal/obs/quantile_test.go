package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{1, 2, 4}
	cases := []struct {
		name string
		cum  []int64 // per finite bound, plus the +Inf total
		q    float64
		want float64
	}{
		// 10 observations uniform over the first bucket: p50 interpolates
		// from zero to the bound.
		{"first bucket from zero", []int64{10, 10, 10, 10}, 0.5, 0.5},
		// rank 5 of 10 sits at the middle of bucket (1,2]: 1 + 1*(5-2)/6.
		{"interior interpolation", []int64{2, 8, 10, 10}, 0.5, 1.5},
		// rank lands exactly on a cumulative boundary: the bound itself.
		{"exact boundary", []int64{5, 10, 10, 10}, 0.5, 1},
		// everything beyond the buckets: clamp to the highest finite bound.
		{"overflow clamps", []int64{0, 0, 1, 10}, 0.99, 4},
		// rank strictly inside a bucket after an empty one.
		{"after empty bucket", []int64{5, 5, 10, 10}, 0.6, 2.4},
		// q=0 with an empty first bucket: degenerate in-bucket count.
		{"zero quantile", []int64{0, 5, 10, 10}, 0, 1},
	}
	for _, tc := range cases {
		if got := quantileFromBuckets(bounds, tc.cum, tc.q); got != tc.want {
			t.Errorf("%s: q%g = %g, want %g", tc.name, tc.q, got, tc.want)
		}
	}
}

// goldenQuantiles pins the derived-quantile JSON for a deterministic
// histogram: 100 observations evenly filling buckets 1/2/4 (60, 30, 10).
const goldenQuantiles = `{"p50":0.8333333333333334,"p95":3,"p99":3.8}`

func TestSnapshotQuantilesGolden(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("aw_demo_q_seconds", "Quantile demo.", []float64{1, 2, 4})
	for i := 0; i < 60; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	snap := r.TakeSnapshot()
	if len(snap.Metrics) != 1 || len(snap.Metrics[0].Series) != 1 {
		t.Fatalf("unexpected snapshot shape: %+v", snap.Metrics)
	}
	got, err := json.Marshal(snap.Metrics[0].Series[0].Quantiles)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != goldenQuantiles {
		t.Errorf("quantiles mismatch:\n got %s\nwant %s", got, goldenQuantiles)
	}

	// The full artifact carries them under the documented key.
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"quantiles"`) {
		t.Errorf("JSON snapshot missing quantiles field:\n%s", sb.String())
	}
}

func TestSnapshotQuantilesAbsentWhenEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("aw_demo_empty_seconds", "Never observed.", []float64{1})
	// Force the family to resolve a series without observations.
	r.HistogramVec("aw_demo_emptyvec_seconds", "Resolved, unobserved.", []float64{1}, "k").With("a")
	for _, ms := range r.TakeSnapshot().Metrics {
		for _, s := range ms.Series {
			if s.Quantiles != nil {
				t.Errorf("%s: quantiles on a zero-count histogram: %v", ms.Name, s.Quantiles)
			}
		}
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "quantiles") {
		t.Error("empty histograms must omit the quantiles key entirely")
	}
}
