// The power-attribution ledger: a structured, append-only flight recorder
// for pipeline events — measurements, quarantines, fit coefficients,
// per-kernel power breakdowns — serialised as JSON Lines. Where the metric
// registry answers "how much, in aggregate", the ledger answers "who
// consumed which watts, when, in which stage": one Event per occurrence,
// correlated across a run by a shared run ID, with unbounded-cardinality
// context (workload names, operating points) that must never become a
// metric label.
//
// Like the rest of obs, the ledger is strictly observe-only: no pipeline
// code path reads an event back, so installing or removing a ledger cannot
// change any output. Event *sets* are deterministic at every worker count —
// emission happens inside singleflight artifact computations or sequential
// replay, never per scheduling decision — while sequence numbers and
// timestamps record the actual interleaving of a particular run.
package obs

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"
)

// Event kinds. The vocabulary is fixed so ledger consumers can switch on
// it; Detail/Coeffs carry the kind-specific payload.
const (
	KindRunStart   = "run_start"   // one per run: Detail = arch, Coeffs = config
	KindRunEnd     = "run_end"     // one per run: Reason = outcome
	KindMeasure    = "measure"     // one per operating point: Workload, ClockMHz, PowerW, Attempts
	KindMeasureErr = "measure_err" // a point that failed every retry: Error
	KindQuarantine = "quarantine"  // workload removed from the flow: Reason
	KindFit        = "fit"         // a stage's fitted coefficients: Stage, Coeffs
	KindBreakdown  = "breakdown"   // per-kernel attribution: Breakdown sums to PowerW
	KindEnergy     = "energy"      // per-tenant energy over one window: Tenant, JoulesActive/Idle/Total
)

// Event is one structured ledger record. Zero-valued fields are omitted
// from the JSONL encoding, so each kind serialises only its payload. The
// encoding round-trips: decode(encode(e)) == e for any event built from
// finite floats (JSON cannot carry NaN/Inf, and no emitter produces them).
type Event struct {
	// Seq orders events within one ledger; TimeUnixNano is the wall-clock
	// stamp. Both are assigned by Emit and describe the particular run's
	// interleaving — determinism tests normalise them away.
	Seq          int64  `json:"seq"`
	TimeUnixNano int64  `json:"t,omitempty"`
	RunID        string `json:"run_id,omitempty"`

	Kind     string `json:"kind"`
	Stage    string `json:"stage,omitempty"`
	Workload string `json:"workload,omitempty"`
	Variant  string `json:"variant,omitempty"`
	// Category tags inference-pack breakdown events with the kernel's
	// behavioural class (gemm, attention, tensorcore, memory, parked), so
	// awreport can fold a ledger into per-category error tables. Empty for
	// classic-suite events.
	Category string `json:"category,omitempty"`
	Detail   string `json:"detail,omitempty"`

	ClockMHz  float64 `json:"clock_mhz,omitempty"`
	PowerW    float64 `json:"power_w,omitempty"`
	MeasuredW float64 `json:"measured_w,omitempty"`
	Attempts  int     `json:"attempts,omitempty"`

	Reason string `json:"reason,omitempty"`
	Error  string `json:"error,omitempty"`

	// Energy-attribution payload (KindEnergy): the tenant charged, the
	// window length in sampling ticks, and the trapezoidally integrated
	// joules per power domain. JoulesTotal is defined as
	// JoulesActive+JoulesIdle evaluated in exactly that order, so consumers
	// (awreport) re-verify the domain split bit-exactly, not within a
	// tolerance. PowerW carries the window's average total power.
	Tenant       string  `json:"tenant,omitempty"`
	Ticks        int64   `json:"ticks,omitempty"`
	JoulesActive float64 `json:"joules_active,omitempty"`
	JoulesIdle   float64 `json:"joules_idle,omitempty"`
	JoulesTotal  float64 `json:"joules_total,omitempty"`

	// Coeffs carries fit coefficients ("const_w": 32.5); Breakdown carries
	// per-component watts keyed by core.Component names and provably sums
	// to PowerW (the attribution invariant).
	Coeffs    map[string]float64 `json:"coeffs,omitempty"`
	Breakdown map[string]float64 `json:"breakdown,omitempty"`
}

// Ledger is a flight recorder of Events. Batch runs use the unbounded form
// (NewLedger): every event is kept and flushed to the JSONL artifact at
// exit. Long-running services use the capped form (NewLedgerCap), a ring
// buffer that retains the most recent events and counts what it sheds —
// bounded memory for an unbounded request stream. The zero value is not
// usable; call a constructor.
type Ledger struct {
	runID string

	mu      sync.Mutex
	events  []Event
	seq     int64
	cap     int   // 0 = unbounded
	head    int   // oldest event's index when the ring has wrapped
	dropped int64 // events shed by the ring
}

// NewLedger returns an empty unbounded ledger stamping runID onto every
// event.
func NewLedger(runID string) *Ledger {
	return &Ledger{runID: runID}
}

// NewLedgerCap returns a ledger that retains at most capacity events,
// shedding the oldest first. capacity < 1 yields an unbounded ledger.
func NewLedgerCap(runID string, capacity int) *Ledger {
	if capacity < 1 {
		capacity = 0
	}
	return &Ledger{runID: runID, cap: capacity}
}

// RunID returns the ledger's run correlation ID.
func (l *Ledger) RunID() string { return l.runID }

// Cap returns the retention bound (0 = unbounded).
func (l *Ledger) Cap() int { return l.cap }

// Dropped returns how many events the ring has shed. Always 0 for an
// unbounded ledger.
func (l *Ledger) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Emit appends an event, stamping Seq, RunID and the wall clock. Nil
// ledgers swallow the event, so call sites need no guards. A capped ledger
// at capacity overwrites its oldest event; Seq keeps counting, so gaps in
// a dumped ledger's sequence reveal exactly what was shed.
func (l *Ledger) Emit(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	ev.RunID = l.runID
	if ev.TimeUnixNano == 0 {
		ev.TimeUnixNano = time.Now().UnixNano()
	}
	if l.cap > 0 && len(l.events) == l.cap {
		l.events[l.head] = ev
		l.head = (l.head + 1) % l.cap
		l.dropped++
	} else {
		l.events = append(l.events, ev)
	}
	l.mu.Unlock()
}

// Events returns a copy of the retained events in emission order.
func (l *Ledger) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.head:]...)
	out = append(out, l.events[:l.head]...)
	return out
}

// Len returns the number of recorded events.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// WriteJSONL renders the ledger as JSON Lines, one event per line, in
// emission order.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range l.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the JSONL artifact atomically (temp file + rename), so
// a crash mid-write never leaves a truncated ledger on disk.
func (l *Ledger) WriteFile(path string) error {
	return WriteFileAtomic(path, l.WriteJSONL)
}

// ReadLedger decodes a JSONL event stream (the WriteJSONL format). Blank
// lines are skipped; a malformed line aborts with its line number.
func ReadLedger(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: ledger line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadLedgerFile reads a ledger artifact from disk.
func ReadLedgerFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLedger(f)
}

// RegisterLedgerMetrics exposes the active ledger's ring-shed count as the
// aw_ledger_dropped_total counter, sampled lazily on every scrape or
// snapshot via an OnCollect hook (the runtime-metrics idiom). The hook
// follows whichever ledger is installed at scrape time and re-bases its
// delta tracking when the ledger is swapped (a new run) — the exposed total
// only ever accumulates, as a counter must, even though each ledger's own
// Dropped() restarts from zero. Safe to call once per registry; repeat
// calls would stack duplicate hooks and double-count, so callers guard
// with their own once (internal/cli does).
func RegisterLedgerMetrics(r *Registry) {
	dropped := r.Counter("aw_ledger_dropped_total",
		"Ledger events shed by the capped ring buffer (0 under an unbounded ledger).")
	var (
		mu   sync.Mutex
		last *Ledger
		seen int64
	)
	r.OnCollect(func() {
		l := r.ledger.Load()
		mu.Lock()
		defer mu.Unlock()
		if l != last {
			last, seen = l, 0
		}
		if d := l.Dropped(); d > seen {
			dropped.Add(float64(d - seen))
			seen = d
		}
	})
}

// SetLedger installs (or, with nil, removes) the registry's flight
// recorder. Instrumented code reaches it through ActiveLedger.
func (r *Registry) SetLedger(l *Ledger) { r.ledger.Store(l) }

// ActiveLedger returns the installed ledger, or nil when none is installed
// or the registry is disabled — callers use the nil to skip building event
// payloads entirely.
func (r *Registry) ActiveLedger() *Ledger {
	if r.off() {
		return nil
	}
	return r.ledger.Load()
}

// SetLedger installs a flight recorder on the default registry.
func SetLedger(l *Ledger) { defaultRegistry.SetLedger(l) }

// ActiveLedger returns the default registry's ledger (nil when absent or
// collection is disabled).
func ActiveLedger() *Ledger { return defaultRegistry.ActiveLedger() }

// Emit records an event on the default registry's ledger, if one is
// installed and collection is enabled.
func Emit(ev Event) { defaultRegistry.ActiveLedger().Emit(ev) }

// NewRunID returns a 16-hex-character correlation ID for one pipeline run,
// shared by the ledger, the trace export and slog lines.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the clock; uniqueness within one host is enough.
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// NewLogger returns a structured logger stamping every line with the run
// ID, replacing the CLIs' ad-hoc fmt/log diagnostics so log lines
// correlate with ledger events and trace spans.
func NewLogger(w io.Writer, runID string) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, nil)).With("run_id", runID)
}
