package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestExpositionUnderChurn hammers one registry from three directions at
// once — writers minting and bumping tenant series, a reaper retiring them
// via DeleteLabel, and scrapers rendering the exposition — the exact load
// the attribution meter puts on the registry when tenants come and go while
// Prometheus scrapes. Run under -race this is the churn-safety proof; the
// assertions pin that every render is internally consistent (no torn
// series, no duplicated family headers) regardless of interleaving.
func TestExpositionUnderChurn(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("aw_churn_total", "Churn.", "tenant", "domain")
	gvec := r.GaugeVec("aw_churn_watts", "Churn gauge.", "tenant")

	const (
		writers  = 4
		tenants  = 64
		rounds   = 50
		scrapers = 2
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i := w; i < tenants; i += writers {
					name := fmt.Sprintf("t-%03d", i)
					vec.With(name, "active").Add(1)
					vec.With(name, "idle").Add(0.5)
					gvec.With(name).Set(float64(i))
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // the reaper: retire the lower half, repeatedly
		defer wg.Done()
		for round := 0; round < rounds; round++ {
			for i := 0; i < tenants/2; i++ {
				name := fmt.Sprintf("t-%03d", i)
				vec.DeleteLabel("tenant", name)
				gvec.DeleteLabel("tenant", name)
			}
		}
	}()
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Errorf("scrape during churn: %v", err)
					return
				}
				exp := sb.String()
				// A rendered series line must be complete: every
				// aw_churn_total sample carries both labels.
				for _, line := range strings.Split(exp, "\n") {
					if strings.HasPrefix(line, "aw_churn_total{") &&
						!strings.Contains(line, `domain="`) {
						t.Errorf("torn series line: %q", line)
						return
					}
				}
				if strings.Count(exp, "# TYPE aw_churn_total") > 1 {
					t.Error("duplicated family header under churn")
					return
				}
				r.TakeSnapshot() // JSON path shares the collect lock
			}
		}()
	}
	wg.Wait()

	// Quiesced: the surviving upper half renders in deterministic sorted
	// order, twice over.
	for i := tenants / 2; i < tenants; i++ {
		vec.With(fmt.Sprintf("t-%03d", i), "active").Add(0)
	}
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of a quiesced registry differ")
	}
	exp := a.String()
	last := ""
	for _, line := range strings.Split(exp, "\n") {
		if !strings.HasPrefix(line, "aw_churn_total{") {
			continue
		}
		if line <= last {
			t.Fatalf("series out of sorted order: %q after %q", line, last)
		}
		last = line
	}
	if !strings.Contains(exp, `tenant="t-063"`) {
		t.Fatal("surviving tenant missing after churn")
	}
}

// TestDeleteLabelVsResolveRace pins the mint-after-retire semantics: a
// With() racing a DeleteLabel() either lands on the old series or mints a
// fresh zeroed one — never a panic, never a stale handle resurrecting a
// value after the quiesced delete below.
func TestDeleteLabelVsResolveRace(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("aw_churn_revive_total", "Revive.", "tenant")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				vec.With("x").Inc()
				if i%7 == 0 {
					vec.DeleteLabel("tenant", "x")
				}
			}
		}()
	}
	wg.Wait()
	vec.DeleteLabel("tenant", "x")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `tenant="x"`) {
		t.Fatalf("deleted series survived a quiesced delete:\n%s", sb.String())
	}
}
