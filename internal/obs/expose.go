package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the text exposition format version this package
// writes, for HTTP Content-Type headers.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in Prometheus text exposition
// format. Output is deterministic: families sort by name, series by label
// values, so the format is golden-testable. Families with no series yet
// are skipped (a Vec nobody resolved has nothing to say).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.collect()
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*Family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		series := f.sorted()
		if len(series) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range series {
			switch m := s.(type) {
			case *Counter:
				writeSample(bw, f.name, f.labels, m.vals, "", "", m.Value())
			case *Gauge:
				writeSample(bw, f.name, f.labels, m.vals, "", "", m.Value())
			case *Histogram:
				cum := m.cumulative()
				for i, bound := range f.buckets {
					writeSample(bw, f.name+"_bucket", f.labels, m.vals, "le", formatFloat(bound), float64(cum[i]))
				}
				writeSample(bw, f.name+"_bucket", f.labels, m.vals, "le", "+Inf", float64(cum[len(cum)-1]))
				writeSample(bw, f.name+"_sum", f.labels, m.vals, "", "", m.Sum())
				writeSample(bw, f.name+"_count", f.labels, m.vals, "", "", float64(m.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one exposition line, appending an extra label (the
// histogram's `le`) when extraName is non-empty.
func writeSample(w io.Writer, name string, labels, vals []string, extraName, extraVal string, v float64) {
	io.WriteString(w, name)
	if len(labels) > 0 || extraName != "" {
		io.WriteString(w, "{")
		for i, l := range labels {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, `%s="%s"`, l, escapeLabel(vals[i]))
		}
		if extraName != "" {
			if len(labels) > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, `%s="%s"`, extraName, extraVal)
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, formatFloat(v))
	io.WriteString(w, "\n")
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// escapeLabel applies the text-exposition label-value escaping: backslash,
// double quote and newline.
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// Handler serves the registry at GET /metrics semantics: the text
// exposition with the standard content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		r.WritePrometheus(w)
	})
}

// Snapshot is the machine-readable telemetry artifact batch runs emit via
// the -metrics-out flag: every metric series plus the retained spans.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
	Spans   []SpanRecord     `json:"spans,omitempty"`
	// SpansTotal counts every span ever recorded; it exceeds len(Spans)
	// once the bounded ring wrapped.
	SpansTotal int64 `json:"spans_total"`
}

// MetricSnapshot is one family.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one label-value tuple's state.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter total or gauge level (absent for histograms).
	Value *float64 `json:"value,omitempty"`
	// Histogram state: cumulative counts per upper bound, plus sum/count.
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
	Sum     *float64         `json:"sum,omitempty"`
	Count   *int64           `json:"count,omitempty"`
	// Quantiles are derived p50/p95/p99 estimates interpolated from the
	// cumulative buckets (histograms with observations only) — the offline
	// counterpart of PromQL's histogram_quantile, so the JSON artifact
	// answers latency questions without a query engine.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket; UpperBound is +Inf on
// the overflow bucket and serialises as the string "+Inf".
type BucketSnapshot struct {
	UpperBound jsonFloat `json:"le"`
	Cumulative int64     `json:"cumulative"`
}

// jsonFloat marshals non-finite floats as strings so the artifact stays
// valid JSON.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return json.Marshal(formatFloat(v))
	}
	return json.Marshal(v)
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	var v float64
	if err := json.Unmarshal(b, &v); err == nil {
		*f = jsonFloat(v)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "+Inf":
		*f = jsonFloat(math.Inf(1))
	case "-Inf":
		*f = jsonFloat(math.Inf(-1))
	case "NaN":
		*f = jsonFloat(math.NaN())
	default:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return err
		}
		*f = jsonFloat(v)
	}
	return nil
}

// TakeSnapshot captures the registry's current state.
func (r *Registry) TakeSnapshot() *Snapshot {
	r.collect()
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*Family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	snap := &Snapshot{}
	for _, f := range fams {
		series := f.sorted()
		if len(series) == 0 {
			continue
		}
		ms := MetricSnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, s := range series {
			var ss SeriesSnapshot
			var vals []string
			switch m := s.(type) {
			case *Counter:
				v := m.Value()
				ss.Value, vals = &v, m.vals
			case *Gauge:
				v := m.Value()
				ss.Value, vals = &v, m.vals
			case *Histogram:
				cum := m.cumulative()
				for i, bound := range f.buckets {
					ss.Buckets = append(ss.Buckets, BucketSnapshot{jsonFloat(bound), cum[i]})
				}
				ss.Buckets = append(ss.Buckets, BucketSnapshot{jsonFloat(math.Inf(1)), cum[len(cum)-1]})
				sum, count := m.Sum(), m.Count()
				ss.Sum, ss.Count, vals = &sum, &count, m.vals
				if count > 0 && len(f.buckets) > 0 {
					ss.Quantiles = map[string]float64{
						"p50": quantileFromBuckets(f.buckets, cum, 0.50),
						"p95": quantileFromBuckets(f.buckets, cum, 0.95),
						"p99": quantileFromBuckets(f.buckets, cum, 0.99),
					}
				}
			}
			if len(f.labels) > 0 {
				ss.Labels = make(map[string]string, len(f.labels))
				for i, l := range f.labels {
					ss.Labels[l] = vals[i]
				}
			}
			ms.Series = append(ms.Series, ss)
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	snap.Spans, snap.SpansTotal = r.Spans()
	return snap
}

// quantileFromBuckets estimates the q-quantile from a histogram's
// cumulative bucket counts following the histogram_quantile convention:
// locate the bucket the target rank falls in and interpolate linearly
// inside it, with the first bucket interpolating up from zero. A rank
// landing in the +Inf overflow bucket reports the highest finite bound —
// the buckets cannot resolve anything above it. bounds holds the finite
// upper bounds (non-empty), cum one cumulative count per bound plus the
// +Inf total; the caller guarantees the total is positive.
func quantileFromBuckets(bounds []float64, cum []int64, q float64) float64 {
	rank := q * float64(cum[len(cum)-1])
	for i, bound := range bounds {
		if float64(cum[i]) < rank {
			continue
		}
		lower, below := 0.0, int64(0)
		if i > 0 {
			lower, below = bounds[i-1], cum[i-1]
		}
		in := cum[i] - below
		if in == 0 {
			return bound
		}
		return lower + (bound-lower)*(rank-float64(below))/float64(in)
	}
	return bounds[len(bounds)-1]
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.TakeSnapshot())
}

// WriteJSONFile writes the snapshot artifact to path — the implementation
// behind the CLIs' -metrics-out flag. The write is atomic (temp file +
// rename): a crash mid-write never leaves truncated JSON on disk.
func (r *Registry) WriteJSONFile(path string) error {
	return WriteFileAtomic(path, r.WriteJSON)
}
