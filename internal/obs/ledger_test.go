package obs

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestLedgerEmitAndRoundTrip(t *testing.T) {
	l := NewLedger("runabc")
	l.Emit(Event{Kind: KindMeasure, Workload: "fp32_fma", ClockMHz: 1380, PowerW: 123.5, Attempts: 2})
	l.Emit(Event{Kind: KindBreakdown, Stage: "eval/validate", Workload: "gemm", Variant: "SASS_SIM",
		PowerW: 200, MeasuredW: 198, Breakdown: map[string]float64{"alu": 12.5, "const": 32.5}})
	l.Emit(Event{Kind: KindQuarantine, Workload: "bad_bench", Reason: "2 failed operating points"})

	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	evs := l.Events()
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d Seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.RunID != "runabc" {
			t.Errorf("event %d RunID = %q", i, ev.RunID)
		}
		if ev.TimeUnixNano == 0 {
			t.Errorf("event %d has no timestamp", i)
		}
	}

	var sb strings.Builder
	if err := l.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLedger(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, evs)
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.Emit(Event{Kind: KindMeasure}) // must not panic
	r := NewRegistry()
	if r.ActiveLedger() != nil {
		t.Fatal("fresh registry must have no ledger")
	}
	r.ActiveLedger().Emit(Event{Kind: KindMeasure}) // nil chain must no-op
}

func TestLedgerDisabledRegistryHidesLedger(t *testing.T) {
	r := NewRegistry()
	l := NewLedger("x")
	r.SetLedger(l)
	if r.ActiveLedger() != l {
		t.Fatal("installed ledger not returned")
	}
	r.SetEnabled(false)
	if r.ActiveLedger() != nil {
		t.Error("disabled registry must report no active ledger")
	}
	r.SetEnabled(true)
	if r.ActiveLedger() != l {
		t.Error("re-enabling must restore the ledger")
	}
}

func TestLedgerWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.jsonl")
	l := NewLedger(NewRunID())
	l.Emit(Event{Kind: KindRunStart, Detail: "volta"})
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != KindRunStart {
		t.Fatalf("read back %+v", evs)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after atomic write, want 1", len(entries))
	}
}

func TestWriteFileAtomicReplacesNotTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := os.WriteFile(path, []byte("old artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A failing writer must leave the previous artifact untouched.
	boom := os.ErrClosed
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old artifact" {
		t.Errorf("failed write clobbered the artifact: %q", data)
	}
}

func TestNewRunID(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if len(a) != 16 || len(b) != 16 {
		t.Errorf("run IDs %q/%q, want 16 hex chars", a, b)
	}
	if a == b {
		t.Errorf("two run IDs collided: %q", a)
	}
}

func TestNewLogger(t *testing.T) {
	var sb strings.Builder
	lg := NewLogger(&sb, "deadbeef00000000")
	lg.Info("pipeline run complete", "arch", "volta")
	out := sb.String()
	if !strings.Contains(out, "run_id=deadbeef00000000") || !strings.Contains(out, "arch=volta") {
		t.Errorf("log line missing correlation attrs: %q", out)
	}
}

func TestLedgerCapRing(t *testing.T) {
	l := NewLedgerCap("capped", 3)
	if l.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", l.Cap())
	}
	for i := 0; i < 5; i++ {
		l.Emit(Event{Kind: KindMeasure, ClockMHz: float64(i)})
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (ring at capacity)", l.Len())
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped())
	}
	evs := l.Events()
	// The most recent three events survive, in emission order, with their
	// original sequence numbers (so the shed prefix is visible as a gap).
	for i, ev := range evs {
		wantSeq := int64(i + 3)
		if ev.Seq != wantSeq || ev.ClockMHz != float64(i+2) {
			t.Fatalf("event %d = {Seq:%d ClockMHz:%g}, want {Seq:%d ClockMHz:%d}",
				i, ev.Seq, ev.ClockMHz, wantSeq, i+2)
		}
	}
	// Below capacity the ring behaves exactly like the unbounded ledger.
	small := NewLedgerCap("small", 8)
	small.Emit(Event{Kind: KindMeasure})
	if small.Len() != 1 || small.Dropped() != 0 {
		t.Fatalf("under-capacity ring: Len=%d Dropped=%d", small.Len(), small.Dropped())
	}
	// capacity < 1 falls back to unbounded.
	if NewLedgerCap("x", 0).Cap() != 0 {
		t.Fatal("capacity 0 should mean unbounded")
	}
	var nilLedger *Ledger
	if nilLedger.Dropped() != 0 {
		t.Fatal("nil ledger Dropped should be 0")
	}
}
