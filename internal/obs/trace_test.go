package obs

import (
	"testing"
	"time"
)

func TestSpanRecordsAndHistogram(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("tune/const_power/warm").WithWorker(3)
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // double-End is a no-op

	recs, total := r.Spans()
	if total != 1 || len(recs) != 1 {
		t.Fatalf("got %d records (total %d), want 1", len(recs), total)
	}
	rec := recs[0]
	if rec.Name != "tune/const_power/warm" {
		t.Errorf("name = %q", rec.Name)
	}
	if rec.Worker != 3 {
		t.Errorf("worker = %d, want 3", rec.Worker)
	}
	if rec.DurationS <= 0 {
		t.Errorf("duration = %v, want > 0", rec.DurationS)
	}
	if rec.StartUnixNano == 0 {
		t.Error("start timestamp missing")
	}

	// Ending a span feeds aw_stage_seconds{stage=...}.
	h := r.stageSeconds().With("tune/const_power/warm")
	if got := h.Count(); got != 1 {
		t.Errorf("aw_stage_seconds count = %d, want 1", got)
	}
}

func TestSpanDefaultsUnattributed(t *testing.T) {
	r := NewRegistry()
	r.StartSpan("eval/validate").End()
	recs, _ := r.Spans()
	if len(recs) != 1 || recs[0].Worker != -1 {
		t.Fatalf("unattributed span worker = %+v, want -1", recs)
	}
}

func TestSpanRingOverwritesOldest(t *testing.T) {
	r := NewRegistry()
	r.spanCapacity = 4
	for i := 0; i < 6; i++ {
		r.StartSpan("s").WithWorker(i).End()
	}
	recs, total := r.Spans()
	if total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}
	if len(recs) != 4 {
		t.Fatalf("retained = %d, want 4", len(recs))
	}
	// Oldest-first: workers 2,3,4,5 survive.
	for i, want := range []int{2, 3, 4, 5} {
		if recs[i].Worker != want {
			t.Fatalf("recs[%d].Worker = %d, want %d (order %v)", i, recs[i].Worker, want, recs)
		}
	}
	// Every overwrite is counted instead of silently discarded.
	if got := r.traceDropped().Value(); got != 2 {
		t.Errorf("aw_trace_dropped_total = %v, want 2", got)
	}
}

func TestSpanDropCounterStaysZeroWithinCapacity(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 10; i++ {
		r.StartSpan("s").End()
	}
	if got := r.traceDropped().Value(); got != 0 {
		t.Errorf("aw_trace_dropped_total = %v before the ring filled, want 0", got)
	}
}

func TestSpanHierarchy(t *testing.T) {
	r := NewRegistry()
	sess := r.StartSpan("session").WithDetail("volta-gv100")
	stage := sess.Child("tune")
	leaf := stage.Child("tune/measure").WithDetail("fp32_fma").WithWorker(2)
	leaf.End()
	stage.End()
	sess.End()

	recs, _ := r.Spans()
	if len(recs) != 3 {
		t.Fatalf("retained %d spans, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, rec := range recs {
		byName[rec.Name] = rec
	}
	if byName["session"].Parent != 0 {
		t.Errorf("session has parent %d, want 0", byName["session"].Parent)
	}
	if byName["tune"].Parent != byName["session"].ID {
		t.Errorf("tune parent = %d, want session id %d", byName["tune"].Parent, byName["session"].ID)
	}
	if byName["tune/measure"].Parent != byName["tune"].ID {
		t.Errorf("measure parent = %d, want tune id %d", byName["tune/measure"].Parent, byName["tune"].ID)
	}
	if byName["tune/measure"].Detail != "fp32_fma" || byName["tune/measure"].Worker != 2 {
		t.Errorf("leaf attrs = %+v", byName["tune/measure"])
	}
	ids := map[int64]bool{}
	for _, rec := range recs {
		if rec.ID == 0 || ids[rec.ID] {
			t.Errorf("span IDs not unique/non-zero: %+v", recs)
		}
		ids[rec.ID] = true
	}
}

func TestSpanChildOfNilIsNil(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	sp := r.StartSpan("session")
	if sp != nil {
		t.Fatal("disabled registry must return nil spans")
	}
	child := sp.Child("tune") // must not panic
	child.WithDetail("x").WithWorker(1).End()
	if child != nil {
		t.Error("child of nil span must be nil")
	}
}
