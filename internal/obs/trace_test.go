package obs

import (
	"testing"
	"time"
)

func TestSpanRecordsAndHistogram(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("tune/const_power/warm").WithWorker(3)
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // double-End is a no-op

	recs, total := r.Spans()
	if total != 1 || len(recs) != 1 {
		t.Fatalf("got %d records (total %d), want 1", len(recs), total)
	}
	rec := recs[0]
	if rec.Name != "tune/const_power/warm" {
		t.Errorf("name = %q", rec.Name)
	}
	if rec.Worker != 3 {
		t.Errorf("worker = %d, want 3", rec.Worker)
	}
	if rec.DurationS <= 0 {
		t.Errorf("duration = %v, want > 0", rec.DurationS)
	}
	if rec.StartUnixNano == 0 {
		t.Error("start timestamp missing")
	}

	// Ending a span feeds aw_stage_seconds{stage=...}.
	h := r.stageSeconds().With("tune/const_power/warm")
	if got := h.Count(); got != 1 {
		t.Errorf("aw_stage_seconds count = %d, want 1", got)
	}
}

func TestSpanDefaultsUnattributed(t *testing.T) {
	r := NewRegistry()
	r.StartSpan("eval/validate").End()
	recs, _ := r.Spans()
	if len(recs) != 1 || recs[0].Worker != -1 {
		t.Fatalf("unattributed span worker = %+v, want -1", recs)
	}
}

func TestSpanRingOverwritesOldest(t *testing.T) {
	r := NewRegistry()
	r.spanCapacity = 4
	for i := 0; i < 6; i++ {
		r.StartSpan("s").WithWorker(i).End()
	}
	recs, total := r.Spans()
	if total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}
	if len(recs) != 4 {
		t.Fatalf("retained = %d, want 4", len(recs))
	}
	// Oldest-first: workers 2,3,4,5 survive.
	for i, want := range []int{2, 3, 4, 5} {
		if recs[i].Worker != want {
			t.Fatalf("recs[%d].Worker = %d, want %d (order %v)", i, recs[i].Worker, want, recs)
		}
	}
}
