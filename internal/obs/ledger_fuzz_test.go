package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzLedgerRoundTrip feeds arbitrary bytes through the ledger decoder.
// The invariant: any stream ReadLedger accepts re-encodes to a stable
// form — encode(decode(x)) == encode(decode(encode(decode(x)))) — so
// ledger artifacts survive read-modify-write cycles byte for byte, the
// same contract FuzzLoadModel enforces for model config files.
func FuzzLedgerRoundTrip(f *testing.F) {
	seed := func(evs ...Event) []byte {
		var sb strings.Builder
		l := NewLedger("fuzzseed00000000")
		for _, ev := range evs {
			l.Emit(ev)
		}
		if err := l.WriteJSONL(&sb); err != nil {
			f.Fatal(err)
		}
		return []byte(sb.String())
	}
	f.Add(seed(Event{Kind: KindMeasure, Workload: "fp32_fma", ClockMHz: 1380, PowerW: 123.5, Attempts: 3}))
	f.Add(seed(
		Event{Kind: KindRunStart, Detail: "volta-gv100"},
		Event{Kind: KindBreakdown, Stage: "eval/validate", Variant: "SASS_SIM",
			Breakdown: map[string]float64{"alu": 1.5, "const": 32.5}},
		Event{Kind: KindQuarantine, Workload: "w", Reason: "2 failed operating points"},
	))
	f.Add([]byte(`{"kind":"fit","coeffs":{"const_w":32.5}}`))
	f.Add([]byte("{}\n\n{}"))
	f.Add([]byte(`{"seq":-1,"t":-5,"kind":""}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"breakdown":{"x":1e309}}`)) // overflows float64 -> decode error

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadLedger(bytes.NewReader(data))
		if err != nil {
			return // rejected input; only accepted streams must round-trip
		}
		enc := func(events []Event) string {
			var sb strings.Builder
			e := json.NewEncoder(&sb)
			for i := range events {
				if err := e.Encode(events[i]); err != nil {
					t.Fatalf("accepted event %d does not re-encode: %v", i, err)
				}
			}
			return sb.String()
		}
		first := enc(evs)
		evs2, err := ReadLedger(strings.NewReader(first))
		if err != nil {
			t.Fatalf("re-encoded ledger does not decode: %v\n%s", err, first)
		}
		if second := enc(evs2); first != second {
			t.Fatalf("round trip unstable:\n--- first ---\n%s--- second ---\n%s", first, second)
		}
	})
}
