// Chrome trace-event export: renders the span ring as the JSON trace
// format Perfetto (ui.perfetto.dev) and chrome://tracing load natively.
// Each worker becomes one track (tid); spans on a track nest visually by
// time containment, so the session → stage → workload hierarchy reads
// directly off the timeline. Parent/child links and details travel in each
// event's args.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one trace-event JSON object. Field order is fixed by the
// struct, values are deterministic given the records, so the output is
// golden-testable.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level object form of the format ({"traceEvents":
// [...]}), which unlike the bare-array form allows metadata.
type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

const chromePID = 1 // single-process pipeline: one trace process

// chromeTID maps a span's worker attribution to a track: unattributed
// spans (the main pipeline thread) to 0, worker w to w+1.
func chromeTID(worker int) int {
	if worker < 0 {
		return 0
	}
	return worker + 1
}

// chromeTraceOf converts span records to trace events. Events are sorted
// by (start, track, name, id) — deterministic for any input order — and
// prefixed with process/thread-name metadata so Perfetto labels the
// tracks. otherData may be nil.
func chromeTraceOf(records []SpanRecord, otherData map[string]string) *chromeTrace {
	recs := append([]SpanRecord(nil), records...)
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.StartUnixNano != b.StartUnixNano {
			return a.StartUnixNano < b.StartUnixNano
		}
		if ta, tb := chromeTID(a.Worker), chromeTID(b.Worker); ta != tb {
			return ta < tb
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.ID < b.ID
	})

	tids := map[int]bool{}
	for _, r := range recs {
		tids[chromeTID(r.Worker)] = true
	}
	order := make([]int, 0, len(tids))
	for t := range tids {
		order = append(order, t)
	}
	sort.Ints(order)

	events := make([]chromeEvent, 0, len(recs)+len(order)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]string{"name": "accelwattch"},
	})
	for _, t := range order {
		name := "pipeline"
		if t > 0 {
			name = "worker " + strconv.Itoa(t-1)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: t,
			Args: map[string]string{"name": name},
		})
	}
	for _, r := range recs {
		args := map[string]string{"id": strconv.FormatInt(r.ID, 10)}
		if r.Parent != 0 {
			args["parent"] = strconv.FormatInt(r.Parent, 10)
		}
		if r.Detail != "" {
			args["detail"] = r.Detail
		}
		events = append(events, chromeEvent{
			Name: r.Name,
			Cat:  "stage",
			Ph:   "X",
			TS:   float64(r.StartUnixNano) / 1e3,
			Dur:  r.DurationS * 1e6,
			PID:  chromePID,
			TID:  chromeTID(r.Worker),
			Args: args,
		})
	}
	return &chromeTrace{TraceEvents: events, OtherData: otherData}
}

// WriteChromeTrace renders records as indented trace-event JSON.
func WriteChromeTrace(w io.Writer, records []SpanRecord, otherData map[string]string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTraceOf(records, otherData))
}

// WriteChromeTrace exports the registry's retained spans, annotating the
// artifact with the all-time span total and the overwritten (dropped)
// count so a wrapped ring is visible in the trace itself.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	recs, total := r.Spans()
	other := map[string]string{
		"spans_total":   strconv.FormatInt(total, 10),
		"spans_dropped": strconv.FormatInt(total-int64(len(recs)), 10),
	}
	return WriteChromeTrace(w, recs, other)
}

// WriteChromeTraceFile writes the trace artifact atomically — the
// implementation behind the CLIs' -trace-out flag.
func (r *Registry) WriteChromeTraceFile(path string) error {
	if err := WriteFileAtomic(path, r.WriteChromeTrace); err != nil {
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return nil
}
