package obs

import (
	"strings"
	"testing"
)

// TestRuntimeMetricsSampledOnScrape: the Go runtime gauges refresh via the
// OnCollect hook, so they carry live values in every exposition without
// any background sampler goroutine.
func TestRuntimeMetricsSampledOnScrape(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fam := range []string{
		"aw_go_goroutines", "aw_go_gomaxprocs", "aw_go_heap_alloc_bytes",
		"aw_go_heap_sys_bytes", "aw_go_next_gc_bytes",
		"aw_go_gc_cycles_total", "aw_go_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, "\n"+fam+" ") && !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("exposition missing runtime family %s", fam)
		}
	}
	// A live process always has at least this test's goroutine.
	if strings.Contains(out, "aw_go_goroutines 0\n") {
		t.Error("goroutine gauge was not sampled")
	}
	// Snapshots sample through the same hook.
	snap := r.TakeSnapshot()
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "aw_go_heap_alloc_bytes" {
			found = *m.Series[0].Value > 0
		}
	}
	if !found {
		t.Error("snapshot did not sample heap gauge")
	}
}

// TestOnCollectHookRuns pins the hook plumbing itself.
func TestOnCollectHookRuns(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.OnCollect(func() { calls++ })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	r.TakeSnapshot()
	if calls != 2 {
		t.Errorf("hook ran %d times, want 2 (one per render/snapshot)", calls)
	}
}
