package obs

import (
	"strings"
	"testing"
)

// droppedTotal scrapes the registry and returns aw_ledger_dropped_total.
func droppedTotal(t *testing.T, r *Registry) float64 {
	t.Helper()
	snap := r.TakeSnapshot()
	for _, m := range snap.Metrics {
		if m.Name == "aw_ledger_dropped_total" {
			return *m.Series[0].Value
		}
	}
	t.Fatal("aw_ledger_dropped_total missing from snapshot")
	return 0
}

// TestLedgerDroppedMetric: the capped ring's shed count surfaces as a
// counter, sampled lazily on scrape, and keeps accumulating across ledger
// swaps even though each ledger's own Dropped() restarts from zero.
func TestLedgerDroppedMetric(t *testing.T) {
	r := NewRegistry()
	RegisterLedgerMetrics(r)

	led := NewLedgerCap("run-1", 4)
	r.SetLedger(led)
	for i := 0; i < 10; i++ {
		led.Emit(Event{Kind: KindMeasure})
	}
	if got := droppedTotal(t, r); got != 6 {
		t.Fatalf("dropped total = %v after 10 emits into cap 4, want 6", got)
	}
	// Re-scraping without new drops must not double-count.
	if got := droppedTotal(t, r); got != 6 {
		t.Fatalf("dropped total moved to %v on an idle re-scrape", got)
	}

	// A new run installs a fresh ledger: the counter re-bases and keeps
	// accumulating — a counter must never go backwards.
	led2 := NewLedgerCap("run-2", 2)
	r.SetLedger(led2)
	for i := 0; i < 3; i++ {
		led2.Emit(Event{Kind: KindMeasure})
	}
	if got := droppedTotal(t, r); got != 7 {
		t.Fatalf("dropped total = %v after swap + 1 more shed, want 7", got)
	}

	// The exposition carries the family too.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "aw_ledger_dropped_total 7") {
		t.Fatalf("exposition missing the dropped counter:\n%s", sb.String())
	}
}

// TestLedgerDroppedMetricUnboundedLedger: an unbounded ledger never sheds,
// so the counter stays at zero — and a nil ledger must not panic the hook.
func TestLedgerDroppedMetricUnboundedLedger(t *testing.T) {
	r := NewRegistry()
	RegisterLedgerMetrics(r)
	if got := droppedTotal(t, r); got != 0 {
		t.Fatalf("dropped total = %v with no ledger installed, want 0", got)
	}
	led := NewLedger("run")
	r.SetLedger(led)
	for i := 0; i < 100; i++ {
		led.Emit(Event{Kind: KindMeasure})
	}
	if got := droppedTotal(t, r); got != 0 {
		t.Fatalf("dropped total = %v under an unbounded ledger, want 0", got)
	}
}
