package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// fixedSpans is a deterministic span set spanning both tracks, hierarchy
// links, details, and an out-of-order input (the converter must sort).
func fixedSpans() []SpanRecord {
	return []SpanRecord{
		{ID: 3, Parent: 2, Name: "tune/measure", Detail: "fp32_fma@1380MHz", Worker: 1, StartUnixNano: 2500, DurationS: 0.000001},
		{ID: 1, Name: "session", Detail: "volta-gv100", Worker: -1, StartUnixNano: 1000, DurationS: 0.000005},
		{ID: 2, Parent: 1, Name: "tune", Worker: -1, StartUnixNano: 2000, DurationS: 0.000003},
	}
}

const goldenChromeTrace = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "accelwattch"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "pipeline"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 2,
   "args": {
    "name": "worker 1"
   }
  },
  {
   "name": "session",
   "cat": "stage",
   "ph": "X",
   "ts": 1,
   "dur": 5,
   "pid": 1,
   "tid": 0,
   "args": {
    "detail": "volta-gv100",
    "id": "1"
   }
  },
  {
   "name": "tune",
   "cat": "stage",
   "ph": "X",
   "ts": 2,
   "dur": 3,
   "pid": 1,
   "tid": 0,
   "args": {
    "id": "2",
    "parent": "1"
   }
  },
  {
   "name": "tune/measure",
   "cat": "stage",
   "ph": "X",
   "ts": 2.5,
   "dur": 1,
   "pid": 1,
   "tid": 2,
   "args": {
    "detail": "fp32_fma@1380MHz",
    "id": "3",
    "parent": "2"
   }
  }
 ],
 "otherData": {
  "spans": "3"
 }
}
`

// TestChromeTraceGolden pins the emitted trace-event JSON byte for byte:
// sorted events, metadata prefix, microsecond timestamps, hierarchy args.
func TestChromeTraceGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, fixedSpans(), map[string]string{"spans": "3"}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != goldenChromeTrace {
		t.Errorf("trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), goldenChromeTrace)
	}
}

// TestChromeTraceDeterministic: two renders of a permuted input agree.
func TestChromeTraceDeterministic(t *testing.T) {
	spans := fixedSpans()
	var a, b strings.Builder
	if err := WriteChromeTrace(&a, spans, nil); err != nil {
		t.Fatal(err)
	}
	spans[0], spans[2] = spans[2], spans[0]
	if err := WriteChromeTrace(&b, spans, nil); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("permuting the input records changed the rendered trace")
	}
}

// TestRegistryChromeTrace exports real ring contents and validates the
// JSON shape plus the drop accounting in otherData.
func TestRegistryChromeTrace(t *testing.T) {
	r := NewRegistry()
	r.spanCapacity = 2
	parent := r.StartSpan("session")
	parent.Child("tune").End()
	r.StartSpan("eval/validate").WithWorker(0).End()
	parent.End() // overwrites the oldest: 3 ended spans, capacity 2

	var sb strings.Builder
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if decoded.OtherData["spans_total"] != "3" || decoded.OtherData["spans_dropped"] != "1" {
		t.Errorf("otherData = %v, want total 3 dropped 1", decoded.OtherData)
	}
	var spanEvents int
	for _, ev := range decoded.TraceEvents {
		if ev["ph"] == "X" {
			spanEvents++
		}
	}
	if spanEvents != 2 {
		t.Errorf("trace has %d span events, want the 2 retained", spanEvents)
	}
}
