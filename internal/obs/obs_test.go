package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("aw_test_events_total", "test counter")
	if got := c.Value(); got != 0 {
		t.Fatalf("fresh counter = %v, want 0", got)
	}
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	c.Add(-7) // counters are monotonic: negative deltas are dropped
	c.Add(0)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter after invalid adds = %v, want 3.5", got)
	}
	// Re-registering the same schema returns the same series.
	if c2 := r.Counter("aw_test_events_total", "test counter"); c2 != c {
		t.Fatal("re-registration forked the series")
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("aw_test_depth", "test gauge")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %v, want -3", got)
	}
}

func TestHistogramSemantics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("aw_test_latency_seconds", "test histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("sum = %v, want 106", got)
	}
	// le semantics: 0.5 and the exact 1 land in le=1; 1.5 in le=2; 3 in
	// le=4; 100 overflows to +Inf.
	want := []int64{2, 3, 4, 5}
	got := h.cumulative()
	if len(got) != len(want) {
		t.Fatalf("cumulative has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", got, want)
		}
	}
}

func TestVecSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("aw_test_outcomes_total", "test vec", "outcome")
	ok1 := v.With("ok")
	ok2 := v.With("ok")
	errS := v.With("error")
	if ok1 != ok2 {
		t.Fatal("With(\"ok\") returned distinct series")
	}
	if ok1 == errS {
		t.Fatal("distinct label values shared a series")
	}
	ok1.Inc()
	if got := ok2.Value(); got != 1 {
		t.Fatalf("aliased series = %v, want 1", got)
	}
	if got := errS.Value(); got != 0 {
		t.Fatalf("other series = %v, want 0", got)
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("aw_test_x_total", "v1")
	cases := []func(){
		func() { r.Gauge("aw_test_x_total", "as gauge") },
		func() { r.CounterVec("aw_test_x_total", "with labels", "k") },
		func() { r.Counter("bad name", "spaces") },
		func() { r.CounterVec("aw_test_y_total", "bad label", "__reserved") },
		func() { r.Histogram("aw_test_h", "no buckets", nil) },
		func() { r.Histogram("aw_test_h2", "bad order", []float64{2, 1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDisabledRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("aw_test_off_total", "gated counter")
	g := r.Gauge("aw_test_off", "gated gauge")
	h := r.Histogram("aw_test_off_seconds", "gated histogram", []float64{1})
	r.SetEnabled(false)
	if r.Enabled() {
		t.Fatal("registry still enabled")
	}
	c.Inc()
	g.Set(9)
	h.Observe(0.5)
	if sp := r.StartSpan("x"); sp != nil {
		t.Fatal("StartSpan on a disabled registry should return nil")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("disabled registry accepted updates")
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled registry dropped the update")
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Span
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	s.WithWorker(3).End()
}

// TestConcurrencyExact hammers one counter, one gauge and one histogram from
// many goroutines and asserts the totals are exact — the CAS add loop must
// not lose updates under contention. Run under -race in CI.
func TestConcurrencyExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("aw_test_conc_total", "contended counter")
	g := r.Gauge("aw_test_conc", "contended gauge")
	h := r.Histogram("aw_test_conc_seconds", "contended histogram",
		ExpBuckets(0.001, 2, 8))
	const (
		goroutines = 16
		perG       = 2000
	)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Add(0.5)
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j%10) * 0.01)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), float64(goroutines*perG)*0.5; got != want {
		t.Errorf("counter = %v, want %v (lost updates)", got, want)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got, want := h.Count(), int64(goroutines*perG); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	cum := h.cumulative()
	if got := cum[len(cum)-1]; got != int64(goroutines*perG) {
		t.Errorf("+Inf cumulative = %d, want %d", got, goroutines*perG)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", exp, want)
		}
	}
	lin := LinearBuckets(10, 5, 3)
	want = []float64{10, 15, 20}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, want)
		}
	}
}
