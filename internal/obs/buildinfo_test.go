package obs

import (
	"strings"
	"testing"
)

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	RegisterBuildInfo(r) // idempotent: constants re-set, nothing duplicates

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	if !strings.Contains(exp, `aw_build_info{go_version="go`) {
		t.Fatalf("exposition missing go_version label:\n%s", exp)
	}
	if strings.Count(exp, "aw_build_info{") != 1 {
		t.Fatalf("build info registered more than one series:\n%s", exp)
	}
	if !strings.HasSuffix(strings.TrimSpace(exp), "1") {
		t.Fatalf("info gauge value must be the constant 1:\n%s", exp)
	}
	if mod := buildModule(); mod == "" {
		t.Fatal("buildModule returned an empty module path")
	}
}
