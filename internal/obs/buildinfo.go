package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo registers the aw_build_info info-style gauge: constant
// value 1 with the process's build identity in the labels, following the
// *_build_info convention of the Prometheus exporters this scheme mirrors
// (joinable onto any other series in a query without changing its value).
// The labels are process constants, so repeat calls are harmless — the
// family registration is idempotent and the series just re-sets to 1.
func RegisterBuildInfo(r *Registry) {
	r.GaugeVec("aw_build_info",
		"Build identity of this binary; always 1, with the identity carried by the labels.",
		"go_version", "module").
		With(runtime.Version(), buildModule()).Set(1)
}

// buildModule reports the main module path stamped into the binary, or
// "unknown" when build info is absent (some test binaries and stripped
// builds).
func buildModule() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		return bi.Main.Path
	}
	return "unknown"
}
