// Package obs is the observability layer of the pipeline: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) plus
// lightweight span tracing, exposed in Prometheus text format (expose.go)
// and as a JSON snapshot artifact for batch runs.
//
// The layer is strictly observe-only. Instrumented code paths never branch
// on a metric value, so enabling or disabling collection cannot change any
// pipeline output — the execution engine's bit-identical-parallelism
// contract holds with obs on or off, which TestObsParityBitIdentical
// asserts. The hot path is allocation-free: a resolved *Counter, *Gauge or
// *Histogram updates purely through atomics, and callers are expected to
// resolve label handles (Vec.With) once, at package init or loop setup,
// not per observation.
//
// Naming follows the Prometheus conventions used by the GPU power
// exporters this layer is modeled on (Kepler, dcgm-style exporters):
// every series is `aw_<subsystem>_<name>[_unit][_total]`, with subsystem
// one of engine, tune, faults, eval, export, stage. Label cardinality is
// bounded by construction — labels only ever carry worker indices
// (≤ GOMAXPROCS), variant names (4), fault kinds (4), quarantine reason
// classes, or pipeline stage names; never workload or kernel names.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Registry holds metric families and completed spans. The zero value is not
// usable; call NewRegistry. A registry is enabled by default;
// SetEnabled(false) turns every Add/Set/Observe/StartSpan into a cheap
// no-op without unregistering anything.
type Registry struct {
	disabled atomic.Bool

	mu       sync.Mutex
	families map[string]*Family

	spanMu       sync.Mutex
	spans        []SpanRecord
	spanNext     int // ring write cursor once the buffer is full
	spanTotal    int64
	spanCapacity int
	spanID       atomic.Int64

	// ledger is the optional structured-event flight recorder (ledger.go);
	// nil until SetLedger installs one, so Emit stays a single atomic load
	// on uninstrumented runs.
	ledger atomic.Pointer[Ledger]

	// onCollect hooks run at the top of WritePrometheus/TakeSnapshot so
	// scrape-time samplers (runtime.go) refresh their gauges lazily.
	hookMu    sync.Mutex
	onCollect []func()
}

// OnCollect registers a hook invoked before every exposition render or
// snapshot. Hooks must be cheap and must only write metrics — they run on
// the scrape path.
func (r *Registry) OnCollect(f func()) {
	r.hookMu.Lock()
	r.onCollect = append(r.onCollect, f)
	r.hookMu.Unlock()
}

// collect runs the registered scrape-time hooks.
func (r *Registry) collect() {
	r.hookMu.Lock()
	hooks := append([]func(){}, r.onCollect...)
	r.hookMu.Unlock()
	for _, f := range hooks {
		f()
	}
}

// DefaultSpanCapacity bounds the per-registry span ring; once full, the
// oldest spans are overwritten so the ring always holds the most recent
// stage history.
const DefaultSpanCapacity = 4096

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		families:     make(map[string]*Family),
		spanCapacity: DefaultSpanCapacity,
	}
}

// defaultRegistry is the process-wide registry every instrumented package
// registers into and cmd/awexport serves.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// SetEnabled turns collection on the default registry on or off.
func SetEnabled(on bool) { defaultRegistry.SetEnabled(on) }

// Enabled reports whether the default registry is collecting.
func Enabled() bool { return defaultRegistry.Enabled() }

// SetEnabled turns collection on or off. Disabling is observe-only too: it
// stops updates but keeps registered families and accumulated values.
func (r *Registry) SetEnabled(on bool) { r.disabled.Store(!on) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return !r.disabled.Load() }

func (r *Registry) off() bool { return r.disabled.Load() }

// Family is one named metric: a kind, a help string, a label schema, and a
// set of label-value series.
type Family struct {
	reg     *Registry
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, strictly increasing

	mu     sync.Mutex
	series map[string]any // *Counter, *Gauge or *Histogram, by joined label values
}

// Name returns the family's metric name.
func (f *Family) Name() string { return f.name }

// labelSep joins label values into series keys; it cannot appear in a
// metric identifier and is escaped out of exposition output anyway.
const labelSep = "\x1f"

// register creates or fetches a family. A name re-registered with a
// different kind, label schema or bucket layout is a programming error —
// registration happens at package init, so it panics loudly there rather
// than silently forking state.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *Family {
	mustValidName(name)
	for _, l := range labels {
		mustValidLabel(name, l)
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %s registered with no buckets", name))
		}
		for i := 1; i < len(buckets); i++ {
			if !(buckets[i] > buckets[i-1]) {
				panic(fmt.Sprintf("obs: histogram %s buckets not strictly increasing: %v", name, buckets))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
		}
		return f
	}
	f := &Family{
		reg:     r,
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]any),
	}
	r.families[name] = f
	return f
}

// with fetches or creates the series for one label-value tuple.
func (f *Family) with(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	vals := append([]string(nil), values...)
	var s any
	switch f.kind {
	case KindCounter:
		s = &Counter{fam: f, vals: vals}
	case KindGauge:
		s = &Gauge{fam: f, vals: vals}
	case KindHistogram:
		s = &Histogram{fam: f, vals: vals, counts: make([]atomic.Int64, len(f.buckets)+1)}
	}
	f.series[key] = s
	return s
}

// deleteWhere unregisters every series whose value for the named label
// equals value, returning how many were dropped. An unknown label drops
// nothing. Outstanding handles to a dropped series keep accepting updates
// but are orphaned — they never appear in exposition again — so callers
// retiring a label value (a removed serving model, a drained worker) must
// stop using their handles first.
func (f *Family) deleteWhere(label, value string) int {
	idx := -1
	for i, l := range f.labels {
		if l == label {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for key := range f.series {
		if strings.Split(key, labelSep)[idx] == value {
			delete(f.series, key)
			n++
		}
	}
	return n
}

// sorted returns the series in deterministic (label-value) order.
func (f *Family) sorted() []any {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]any, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	f.mu.Unlock()
	return out
}

// Counter is a monotonically non-decreasing value. Updates are atomic and
// allocation-free; values are float64 (Prometheus counters are floats, and
// the engine accumulates busy-seconds into one).
type Counter struct {
	fam  *Family
	vals []string
	bits atomic.Uint64
}

// Counter registers (or fetches) a label-less counter family and returns
// its single series.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).with(nil).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *Family }

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// With resolves the series for one label-value tuple. Resolve once and keep
// the handle; With itself takes the family lock.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values).(*Counter) }

// DeleteLabel unregisters every series whose named label carries value —
// the garbage-collection hook for bounded-but-churning label vocabularies
// (e.g. retired serving models). Returns the number of series dropped.
func (v *CounterVec) DeleteLabel(label, value string) int { return v.f.deleteWhere(label, value) }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by d (negative d is ignored: counters are
// monotonic by definition).
func (c *Counter) Add(d float64) {
	if c == nil || d <= 0 || c.fam.reg.off() {
		return
	}
	addFloat(&c.bits, d)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an arbitrary float64 that can go up and down.
type Gauge struct {
	fam  *Family
	vals []string
	bits atomic.Uint64
}

// Gauge registers (or fetches) a label-less gauge family and returns its
// single series.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).with(nil).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *Family }

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// With resolves the series for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values).(*Gauge) }

// DeleteLabel unregisters every series whose named label carries value.
func (v *GaugeVec) DeleteLabel(label, value string) int { return v.f.deleteWhere(label, value) }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.fam.reg.off() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil || g.fam.reg.off() {
		return
	}
	addFloat(&g.bits, d)
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observation is
// allocation-free: a binary search over the bounds plus three atomic
// updates.
type Histogram struct {
	fam     *Family
	vals    []string
	counts  []atomic.Int64 // one per bound, plus +Inf overflow at the end
	sumBits atomic.Uint64
	n       atomic.Int64
}

// Histogram registers (or fetches) a label-less histogram family with the
// given bucket upper bounds and returns its single series.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, KindHistogram, nil, buckets).with(nil).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *Family }

// HistogramVec registers (or fetches) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, buckets)}
}

// With resolves the series for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values).(*Histogram) }

// DeleteLabel unregisters every series whose named label carries value.
func (v *HistogramVec) DeleteLabel(label, value string) int { return v.f.deleteWhere(label, value) }

// Observe records one value. NaN observations are dropped (they would
// poison the sum without landing in any meaningful bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || h.fam.reg.off() {
		return
	}
	// First bucket whose upper bound is >= v; equality lands in the lower
	// bucket, matching Prometheus `le` semantics.
	lo, hi := 0, len(h.fam.buckets)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.fam.buckets[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.n.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// cumulative returns the per-bound cumulative counts (ending with the +Inf
// total). Concurrent observations may land between bucket loads; the skew
// is bounded by in-flight observations and irrelevant for monitoring.
func (h *Histogram) cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// ExpBuckets returns n strictly-increasing bounds starting at start,
// multiplying by factor: the standard latency-histogram layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%g, %g, %d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("obs: invalid LinearBuckets(%g, %g, %d)", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// addFloat atomically adds d to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func mustValidName(name string) {
	if !validIdent(name, true) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func mustValidLabel(metric, label string) {
	if !validIdent(label, false) || strings.HasPrefix(label, "__") {
		panic(fmt.Sprintf("obs: metric %s has invalid label name %q", metric, label))
	}
}

// validIdent checks Prometheus identifier syntax: [a-zA-Z_:][a-zA-Z0-9_:]*
// for metric names (colons allowed), [a-zA-Z_][a-zA-Z0-9_]* for labels.
func validIdent(s string, colons bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && colons:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
