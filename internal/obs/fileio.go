package obs

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes an artifact via a temp file in the destination
// directory followed by an atomic rename, so a crash mid-write can never
// leave a truncated file at path — readers see either the old artifact or
// the complete new one. All obs artifact writers (-metrics-out,
// -trace-out, ledger files) go through it.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // the rename path owns cleanup now
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
