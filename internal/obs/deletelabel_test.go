package obs

import (
	"strings"
	"testing"
)

// DeleteLabel is the series GC behind model retirement: dropping every
// series carrying one label value keeps bounded labels bounded across
// add/retire churn.
func TestDeleteLabel(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("aw_test_routed_total", "test", "model", "result")
	v.With("a", "hit").Inc()
	v.With("a", "miss").Inc()
	v.With("b", "hit").Add(3)

	if n := v.DeleteLabel("model", "a"); n != 2 {
		t.Fatalf("deleted %d series, want 2", n)
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Contains(text, `model="a"`) {
		t.Fatalf("deleted series still exposed:\n%s", text)
	}
	if !strings.Contains(text, `model="b"`) {
		t.Fatalf("unrelated series vanished:\n%s", text)
	}

	// Unknown values and labels are no-ops, not errors.
	if n := v.DeleteLabel("model", "a"); n != 0 {
		t.Fatalf("re-delete removed %d series, want 0", n)
	}
	if n := v.DeleteLabel("nonexistent", "b"); n != 0 {
		t.Fatalf("unknown label removed %d series, want 0", n)
	}

	// Deletion is keyed by label position: a value that appears under a
	// different label must survive.
	v.With("hit", "miss").Inc() // model="hit", result="miss"
	if n := v.DeleteLabel("result", "hit"); n != 1 {
		t.Fatalf("deleted %d series by result, want 1", n)
	}
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `model="hit"`) {
		t.Fatal("series whose model value matches another label's deleted value was dropped")
	}

	// A live handle to a deleted series keeps working but re-With creates a
	// fresh series (orphaned-handle semantics).
	g := r.GaugeVec("aw_test_state", "test", "model")
	h := g.With("x")
	h.Set(5)
	if n := g.DeleteLabel("model", "x"); n != 1 {
		t.Fatalf("gauge delete removed %d, want 1", n)
	}
	h.Set(7) // must not panic
	if got := g.With("x").Value(); got != 0 {
		t.Fatalf("re-registered series inherited the orphan's value %v", got)
	}

	hv := r.HistogramVec("aw_test_lat", "test", []float64{1}, "model")
	hv.With("x").Observe(0.5)
	if n := hv.DeleteLabel("model", "x"); n != 1 {
		t.Fatalf("histogram delete removed %d, want 1", n)
	}
}
