package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildDemoRegistry populates a registry with one family of each kind, with
// fully deterministic values, so the exposition can be golden-tested.
func buildDemoRegistry() *Registry {
	r := NewRegistry()
	req := r.CounterVec("aw_demo_requests_total", "Demo requests.", "outcome")
	req.With("ok").Add(5)
	req.With("error").Add(2)
	r.Gauge("aw_demo_queue_depth", "Demo queue depth.").Set(3)
	h := r.Histogram("aw_demo_latency_seconds", "Demo latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2.5)
	// A registered family nobody resolved: must be skipped entirely.
	r.CounterVec("aw_demo_unused_total", "Never resolved.", "k")
	return r
}

const goldenExposition = `# HELP aw_demo_latency_seconds Demo latency.
# TYPE aw_demo_latency_seconds histogram
aw_demo_latency_seconds_bucket{le="0.1"} 1
aw_demo_latency_seconds_bucket{le="1"} 2
aw_demo_latency_seconds_bucket{le="+Inf"} 3
aw_demo_latency_seconds_sum 3.05
aw_demo_latency_seconds_count 3
# HELP aw_demo_queue_depth Demo queue depth.
# TYPE aw_demo_queue_depth gauge
aw_demo_queue_depth 3
# HELP aw_demo_requests_total Demo requests.
# TYPE aw_demo_requests_total counter
aw_demo_requests_total{outcome="error"} 2
aw_demo_requests_total{outcome="ok"} 5
`

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildDemoRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != goldenExposition {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenExposition)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := buildDemoRegistry()
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of the same registry differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("aw_demo_esc_total", "Escaping.", "k").With("a\\b\"c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `aw_demo_esc_total{k="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped sample missing:\ngot %q\nwant line %q", sb.String(), want)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := buildDemoRegistry()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PrometheusContentType)
	}
	if rec.Body.String() != goldenExposition {
		t.Errorf("handler body differs from WritePrometheus output")
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := buildDemoRegistry()
	r.StartSpan("demo/stage").WithWorker(1).End()

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.SpansTotal != 1 || len(snap.Spans) != 1 || snap.Spans[0].Name != "demo/stage" {
		t.Errorf("spans = %+v (total %d), want the one demo span", snap.Spans, snap.SpansTotal)
	}

	byName := make(map[string]MetricSnapshot)
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	// Ending the span registered aw_stage_seconds alongside the demo families.
	for _, name := range []string{"aw_demo_requests_total", "aw_demo_queue_depth", "aw_demo_latency_seconds", "aw_stage_seconds"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("snapshot missing family %s (have %v)", name, names(snap.Metrics))
		}
	}
	if _, ok := byName["aw_demo_unused_total"]; ok {
		t.Error("snapshot contains the never-resolved family")
	}

	hist := byName["aw_demo_latency_seconds"].Series[0]
	if hist.Count == nil || *hist.Count != 3 || hist.Sum == nil || *hist.Sum != 3.05 {
		t.Errorf("histogram snapshot = %+v, want count 3 sum 3.05", hist)
	}
	if n := len(hist.Buckets); n != 3 {
		t.Fatalf("histogram snapshot has %d buckets, want 3 (incl. +Inf)", n)
	}
	if hist.Buckets[2].Cumulative != 3 {
		t.Errorf("+Inf cumulative = %d, want 3", hist.Buckets[2].Cumulative)
	}

	ctr := byName["aw_demo_requests_total"]
	if len(ctr.Series) != 2 {
		t.Fatalf("counter snapshot has %d series, want 2", len(ctr.Series))
	}
	if ctr.Series[0].Labels["outcome"] != "error" || *ctr.Series[0].Value != 2 {
		t.Errorf("counter series[0] = %+v, want outcome=error value 2", ctr.Series[0])
	}
}

func names(ms []MetricSnapshot) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	return out
}

func TestJSONSnapshotNonFiniteBounds(t *testing.T) {
	r := NewRegistry()
	r.Histogram("aw_demo_h", "h", []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"+Inf"`) {
		t.Errorf("snapshot should serialise the overflow bound as the string \"+Inf\":\n%s", sb.String())
	}
}
