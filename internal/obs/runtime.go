package obs

import (
	"runtime"
	"sync"
)

// RegisterRuntimeMetrics wires Go runtime/GC/goroutine gauges into the
// registry, sampled lazily on every scrape or snapshot via an OnCollect
// hook — the profiling companion to cmd/awexport's pprof endpoints.
// Monotonic MemStats totals (GC cycles, pause time) are exposed as proper
// counters by adding deltas between scrapes. Safe to call once per
// registry; repeat calls would stack duplicate hooks, so callers guard
// with their own once (awexport calls it exactly once at startup).
func RegisterRuntimeMetrics(r *Registry) {
	goroutines := r.Gauge("aw_go_goroutines",
		"Goroutines at the last scrape.")
	gomaxprocs := r.Gauge("aw_go_gomaxprocs",
		"GOMAXPROCS at the last scrape.")
	heapAlloc := r.Gauge("aw_go_heap_alloc_bytes",
		"Bytes of allocated heap objects at the last scrape.")
	heapSys := r.Gauge("aw_go_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS at the last scrape.")
	nextGC := r.Gauge("aw_go_next_gc_bytes",
		"Heap size target of the next GC cycle.")
	gcCycles := r.Counter("aw_go_gc_cycles_total",
		"Completed GC cycles since process start.")
	gcPause := r.Counter("aw_go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.")

	var (
		mu            sync.Mutex
		lastCycles    uint32
		lastPauseNano uint64
	)
	r.OnCollect(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		gomaxprocs.Set(float64(runtime.GOMAXPROCS(0)))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		nextGC.Set(float64(ms.NextGC))
		mu.Lock()
		gcCycles.Add(float64(ms.NumGC - lastCycles))
		gcPause.Add(float64(ms.PauseTotalNs-lastPauseNano) / 1e9)
		lastCycles, lastPauseNano = ms.NumGC, ms.PauseTotalNs
		mu.Unlock()
	})
}
