// Package stats provides the error and correlation metrics the paper
// reports: mean absolute percentage error (MAPE) with a 95% confidence
// interval, the Pearson r coefficient, and geometric means.
package stats

import (
	"fmt"
	"math"
)

// MAPE returns the mean absolute percentage error (in percent) of estimates
// against measurements, as defined in [9] of the paper.
func MAPE(measured, estimated []float64) (float64, error) {
	if len(measured) != len(estimated) || len(measured) == 0 {
		return 0, fmt.Errorf("stats: MAPE needs matched non-empty series")
	}
	s := 0.0
	for i := range measured {
		if measured[i] == 0 {
			return 0, fmt.Errorf("stats: MAPE undefined for zero measurement at %d", i)
		}
		s += math.Abs(estimated[i]-measured[i]) / math.Abs(measured[i])
	}
	return 100 * s / float64(len(measured)), nil
}

// MAPEWithCI returns MAPE plus the half-width of its 95% confidence
// interval (normal approximation over the per-sample absolute percentage
// errors), matching the paper's "9.2 +/- 3.12%" style of reporting.
func MAPEWithCI(measured, estimated []float64) (mape, ci float64, err error) {
	mape, err = MAPE(measured, estimated)
	if err != nil {
		return 0, 0, err
	}
	n := float64(len(measured))
	if n < 2 {
		return mape, 0, nil
	}
	mean := mape / 100
	varSum := 0.0
	for i := range measured {
		e := math.Abs(estimated[i]-measured[i])/math.Abs(measured[i]) - mean
		varSum += e * e
	}
	sd := math.Sqrt(varSum / (n - 1))
	return mape, 100 * 1.96 * sd / math.Sqrt(n), nil
}

// MaxAPE returns the maximum absolute percentage error (in percent).
func MaxAPE(measured, estimated []float64) (float64, error) {
	if len(measured) != len(estimated) || len(measured) == 0 {
		return 0, fmt.Errorf("stats: MaxAPE needs matched non-empty series")
	}
	m := 0.0
	for i := range measured {
		if measured[i] == 0 {
			return 0, fmt.Errorf("stats: MaxAPE undefined for zero measurement at %d", i)
		}
		e := math.Abs(estimated[i]-measured[i]) / math.Abs(measured[i])
		if e > m {
			m = e
		}
	}
	return 100 * m, nil
}

// Pearson returns the Pearson correlation coefficient r.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, fmt.Errorf("stats: Pearson needs matched series of length >= 2")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, fmt.Errorf("stats: Pearson undefined for a constant series")
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Geomean returns the geometric mean of positive values — Eq. (8) combines
// per-microbenchmark idle-SM estimates this way.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty set")
	}
	s := 0.0
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean needs positive values, got %g at %d", x, i)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RelErr returns (estimated-measured)/measured.
func RelErr(measured, estimated float64) float64 {
	return (estimated - measured) / measured
}
