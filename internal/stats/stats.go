// Package stats provides the error and correlation metrics the paper
// reports: mean absolute percentage error (MAPE) with a 95% confidence
// interval, the Pearson r coefficient, and geometric means.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// MAPE returns the mean absolute percentage error (in percent) of estimates
// against measurements, as defined in [9] of the paper.
func MAPE(measured, estimated []float64) (float64, error) {
	if len(measured) != len(estimated) || len(measured) == 0 {
		return 0, fmt.Errorf("stats: MAPE needs matched non-empty series")
	}
	s := 0.0
	for i := range measured {
		if measured[i] == 0 {
			return 0, fmt.Errorf("stats: MAPE undefined for zero measurement at %d", i)
		}
		s += math.Abs(estimated[i]-measured[i]) / math.Abs(measured[i])
	}
	return 100 * s / float64(len(measured)), nil
}

// MAPEWithCI returns MAPE plus the half-width of its 95% confidence
// interval (normal approximation over the per-sample absolute percentage
// errors), matching the paper's "9.2 +/- 3.12%" style of reporting.
func MAPEWithCI(measured, estimated []float64) (mape, ci float64, err error) {
	mape, err = MAPE(measured, estimated)
	if err != nil {
		return 0, 0, err
	}
	n := float64(len(measured))
	if n < 2 {
		return mape, 0, nil
	}
	mean := mape / 100
	varSum := 0.0
	for i := range measured {
		e := math.Abs(estimated[i]-measured[i])/math.Abs(measured[i]) - mean
		varSum += e * e
	}
	sd := math.Sqrt(varSum / (n - 1))
	return mape, 100 * 1.96 * sd / math.Sqrt(n), nil
}

// MaxAPE returns the maximum absolute percentage error (in percent).
func MaxAPE(measured, estimated []float64) (float64, error) {
	if len(measured) != len(estimated) || len(measured) == 0 {
		return 0, fmt.Errorf("stats: MaxAPE needs matched non-empty series")
	}
	m := 0.0
	for i := range measured {
		if measured[i] == 0 {
			return 0, fmt.Errorf("stats: MaxAPE undefined for zero measurement at %d", i)
		}
		e := math.Abs(estimated[i]-measured[i]) / math.Abs(measured[i])
		if e > m {
			m = e
		}
	}
	return 100 * m, nil
}

// Pearson returns the Pearson correlation coefficient r.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, fmt.Errorf("stats: Pearson needs matched series of length >= 2")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, fmt.Errorf("stats: Pearson undefined for a constant series")
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Geomean returns the geometric mean of positive values — Eq. (8) combines
// per-microbenchmark idle-SM estimates this way.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty set")
	}
	s := 0.0
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean needs positive values, got %g at %d", x, i)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Median returns the middle value (mean of the two middle values for even
// lengths). The input slice is not modified. Medians are the workhorse of
// the fault-hardened measurement path: a handful of wild NVML samples
// cannot move them.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: median of empty set")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// MAD returns the median absolute deviation around the median — the robust
// scale estimate used to reject outlier samples (multiply by 1.4826 for a
// consistent sigma estimate under Gaussian noise).
func MAD(xs []float64) (med, mad float64, err error) {
	med, err = Median(xs)
	if err != nil {
		return 0, 0, err
	}
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	mad, err = Median(dev)
	return med, mad, err
}

// AllFinite reports whether every value is neither NaN nor infinite.
func AllFinite(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RelErr returns (estimated-measured)/measured. A zero measurement has no
// defined relative error; NaN is returned (never ±Inf) so a degenerate
// sample is detectable with AllFinite instead of poisoning comparisons —
// every ordered comparison against NaN is false, while ±Inf compares
// "larger than everything" and silently wins max-style aggregations.
func RelErr(measured, estimated float64) float64 {
	if measured == 0 {
		return math.NaN()
	}
	return (estimated - measured) / measured
}
