package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMAPEKnown(t *testing.T) {
	m, err := MAPE([]float64{100, 200}, []float64{110, 180})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-10) > 1e-9 {
		t.Errorf("MAPE = %v, want 10", m)
	}
}

func TestMAPEErrors(t *testing.T) {
	if _, err := MAPE(nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched series accepted")
	}
	if _, err := MAPE([]float64{0}, []float64{1}); err == nil {
		t.Error("zero measurement accepted")
	}
}

func TestMAPEWithCI(t *testing.T) {
	meas := []float64{100, 100, 100, 100}
	est := []float64{105, 95, 110, 90}
	m, ci, err := MAPEWithCI(meas, est)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-7.5) > 1e-9 {
		t.Errorf("MAPE = %v, want 7.5", m)
	}
	if ci <= 0 || ci > 10 {
		t.Errorf("CI = %v out of plausible range", ci)
	}
	// A constant error has zero CI width.
	_, ci0, _ := MAPEWithCI([]float64{10, 20}, []float64{11, 22})
	if ci0 > 1e-9 {
		t.Errorf("uniform relative error should have zero CI, got %v", ci0)
	}
}

func TestMaxAPE(t *testing.T) {
	m, err := MaxAPE([]float64{100, 200}, []float64{110, 150})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-25) > 1e-9 {
		t.Errorf("MaxAPE = %v, want 25", m)
	}
}

func TestPearsonKnown(t *testing.T) {
	r, err := Pearson([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", r)
	}
	r, _ = Pearson([]float64{1, 2, 3, 4}, []float64{8, 6, 4, 2})
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("constant series accepted")
	}
}

func TestGeomean(t *testing.T) {
	g, err := Geomean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-10) > 1e-9 {
		t.Errorf("geomean = %v, want 10", g)
	}
	if _, err := Geomean([]float64{1, -1}); err == nil {
		t.Error("negative value accepted")
	}
	if _, err := Geomean(nil); err == nil {
		t.Error("empty set accepted")
	}
}

func TestMeanAndRelErr(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if RelErr(100, 110) != 0.1 {
		t.Error("RelErr wrong")
	}
}

// Property: MAPE is scale invariant and zero only for exact estimates.
func TestQuickMAPEProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		meas := make([]float64, n)
		est := make([]float64, n)
		for i := range meas {
			meas[i] = 1 + r.Float64()*100
			est[i] = meas[i] * (0.5 + r.Float64())
		}
		m1, err := MAPE(meas, est)
		if err != nil || m1 < 0 {
			return false
		}
		// Scale both series: MAPE unchanged.
		k := 3.7
		meas2 := make([]float64, n)
		est2 := make([]float64, n)
		for i := range meas {
			meas2[i] = meas[i] * k
			est2[i] = est[i] * k
		}
		m2, _ := MAPE(meas2, est2)
		if math.Abs(m1-m2) > 1e-9 {
			return false
		}
		mExact, _ := MAPE(meas, meas)
		return mExact == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: geomean lies between min and max.
func TestQuickGeomeanBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		xs := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = 0.01 + r.Float64()*100
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g, err := Geomean(xs)
		if err != nil {
			return false
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Pearson is invariant under positive affine transforms.
func TestQuickPearsonAffineInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = x[i] + r.NormFloat64()*0.5
		}
		r1, err := Pearson(x, y)
		if err != nil {
			return true // degenerate draw
		}
		y2 := make([]float64, n)
		for i := range y {
			y2[i] = 2.5*y[i] + 7
		}
		r2, _ := Pearson(x, y2)
		return math.Abs(r1-r2) < 1e-9 && r1 >= -1-1e-12 && r1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Degenerate measured series must never produce ±Inf: RelErr reports NaN
// (detectable with AllFinite) and the aggregate metrics report errors.
func TestDegenerateMeasuredSeries(t *testing.T) {
	if got := RelErr(0, 50); !math.IsNaN(got) {
		t.Errorf("RelErr(0, 50) = %v, want NaN", got)
	}
	if got := RelErr(0, 0); !math.IsNaN(got) {
		t.Errorf("RelErr(0, 0) = %v, want NaN", got)
	}
	if AllFinite(RelErr(0, 50)) {
		t.Error("degenerate RelErr must fail AllFinite")
	}
	if _, err := MAPE([]float64{10, 0}, []float64{10, 5}); err == nil {
		t.Error("MAPE must error on a zero measurement, not return Inf")
	}
	if _, _, err := MAPEWithCI([]float64{10, 0}, []float64{10, 5}); err == nil {
		t.Error("MAPEWithCI must error on a zero measurement")
	}
	if _, err := MaxAPE([]float64{0}, []float64{5}); err == nil {
		t.Error("MaxAPE must error on a zero measurement, not return Inf")
	}
	if _, err := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("Pearson must error on a constant series, not divide by zero")
	}
}
