// Command awworker is a remote engine shard: a process that serves
// operating-point measurements (and, with -model, estimation/sweep
// computations) over the shard task protocol to a coordinator running
// awtune, awvalidate, awsweep, or awserve with -shards.
//
//	awworker -listen :9191 -arch volta                  # measurement shard
//	awworker -listen :9191 -model volta.json            # + serving shard
//	awtune -shards localhost:9191,localhost:9192        # coordinator
//
// A worker must be started with the same -arch/-full/-faults/-fault-seed
// (and, for serving tasks, the same -model) as its coordinator: every task
// carries a configuration fingerprint, and a worker built differently
// refuses the task ("unsupported") so the coordinator computes it locally
// instead of adopting bytes from a divergent configuration. Placement can
// therefore never change a result — only who computes it.
//
// SIGINT/SIGTERM drains gracefully: /readyz flips to 503 (so dispatcher
// health checks quarantine this worker), new tasks are refused, in-flight
// tasks complete, and artifacts flush with run_end reason "sigterm".
// -crash-after N aborts the process mid-service after N tasks — the chaos
// suite's forced-failover lever.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"accelwattch"
	"accelwattch/internal/cli"
	"accelwattch/internal/core"
	"accelwattch/internal/serve"
	"accelwattch/internal/shard"
	"accelwattch/internal/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("awworker: ")
	var (
		listen    = flag.String("listen", ":9191", "listen address for the task protocol")
		archName  = flag.String("arch", "volta", "architecture this shard measures (volta, pascal, turing); must match the coordinator")
		full      = flag.Bool("full", false, "full-fidelity workload scale; must match the coordinator")
		faultName = flag.String("faults", "off", "power-meter fault profile ("+
			strings.Join(accelwattch.NamedFaultProfiles(), ", ")+"); must match the coordinator")
		faultSeed    = flag.Int64("fault-seed", 1, "deterministic seed for the fault injector; must match the coordinator")
		modelPath    = flag.String("model", "", "also serve estimate/sweep tasks for this saved model (accelwattch-model-v1 JSON)")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent task bound; excess answers 429 (0 = 4x GOMAXPROCS)")
		taskDeadline = flag.Duration("task-deadline", 30*time.Second, "per-task execution deadline; overruns answer 504")
		crashAfter   = flag.Int64("crash-after", 0, "abort the process after admitting this many tasks (0 = never); for failover testing")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight tasks")
	)
	traceOut, ledgerOut := cli.Artifacts()
	flag.Parse()

	arch, err := resolveArch(*archName)
	if err != nil {
		log.Fatal(err)
	}
	sc := accelwattch.Quick
	if *full {
		sc = accelwattch.Full
	}
	prof, err := accelwattch.NamedFaultProfile(*faultName, *faultSeed)
	if err != nil {
		log.Fatal(err)
	}

	run := cli.Start("awworker", arch.Name+" faults="+*faultName, *traceOut, *ledgerOut)

	// Mirror the coordinator's testbench construction exactly — the task
	// fingerprint covers arch, scale, fault profile, and policy, and any
	// difference turns every task into a capability miss.
	tb, err := accelwattch.NewWorkerTestbench(arch, sc, accelwattch.SessionOptions{Faults: &prof})
	if err != nil {
		run.Fatal(err)
	}
	mux := shard.NewMux()
	tune.RegisterMeasureTask(mux, tb, tune.StandardWorkloads(arch, sc))
	if *modelPath != "" {
		m, err := core.LoadModel(*modelPath)
		if err != nil {
			run.Fatal(err)
		}
		models := make(map[tune.Variant]*core.Model, tune.NumVariants)
		for _, v := range tune.Variants() {
			models[v] = m
		}
		if err := serve.RegisterTasks(mux, models); err != nil {
			run.Fatal(err)
		}
	}

	var onTask func(int64)
	if *crashAfter > 0 {
		limit := *crashAfter
		onTask = func(n int64) {
			if n > limit {
				// A hard abort, not a drain: the coordinator must observe a
				// mid-flight transport failure and fail over.
				log.Printf("crash-after %d reached; aborting", limit)
				os.Exit(2)
			}
		}
	}
	worker, err := shard.NewWorker(shard.WorkerConfig{
		Mux:         mux,
		MaxInflight: *maxInflight,
		Deadline:    *taskDeadline,
		OnTask:      onTask,
	})
	if err != nil {
		run.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *listen, Handler: worker.Handler()}
	errc := make(chan error, 1)
	go func() {
		run.Log.Info("serving shard tasks", "addr", *listen, "kinds", strings.Join(mux.Kinds(), ","),
			"fingerprint", tb.Fingerprint())
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		run.Log.Info("signal received; draining", "served", worker.Served())
	case err := <-errc:
		run.Fatal(err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := worker.Drain(dctx); err != nil {
		run.Log.Error("drain incomplete", "err", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		run.Log.Error("http shutdown", "err", err)
	}
	if err := run.CloseReason("sigterm"); err != nil {
		run.Log.Error("writing artifacts", "err", err)
		os.Exit(1)
	}
}

// resolveArch maps a -arch flag value onto a stock architecture.
func resolveArch(name string) (*accelwattch.Arch, error) {
	switch name {
	case "volta":
		return accelwattch.Volta(), nil
	case "pascal":
		return accelwattch.Pascal(), nil
	case "turing":
		return accelwattch.Turing(), nil
	default:
		return nil, errors.New("unknown architecture " + name + " (want volta, pascal, or turing)")
	}
}
