package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		name string
		line string
		ok   bool
		want result
	}{
		{
			name: "standard benchmem line",
			line: "BenchmarkServeMixedLoad-8   12000   95012 ns/op   1234 B/op   17 allocs/op",
			ok:   true,
			want: result{Name: "BenchmarkServeMixedLoad", Procs: 8, Iterations: 12000, Count: 1,
				Metrics: map[string]metric{
					"ns/op":     {95012, 95012, 95012},
					"B/op":      {1234, 1234, 1234},
					"allocs/op": {17, 17, 17},
				}},
		},
		{
			name: "no procs suffix under GOMAXPROCS=1",
			line: "BenchmarkServeMixedLoad \t 11284\t    100450 ns/op",
			ok:   true,
			want: result{Name: "BenchmarkServeMixedLoad", Iterations: 11284, Count: 1,
				Metrics: map[string]metric{"ns/op": {100450, 100450, 100450}}},
		},
		{
			name: "custom ReportMetric unit alongside benchmem",
			line: "BenchmarkEstimateBatch-4   1000   3346 ns/op   64.00 kernels/op   0 B/op   0 allocs/op",
			ok:   true,
			want: result{Name: "BenchmarkEstimateBatch", Procs: 4, Iterations: 1000, Count: 1,
				Metrics: map[string]metric{
					"ns/op":      {3346, 3346, 3346},
					"kernels/op": {64, 64, 64},
					"B/op":       {0, 0, 0},
					"allocs/op":  {0, 0, 0},
				}},
		},
		{
			name: "sub-benchmark with dashes keeps its path",
			line: "BenchmarkX/case-with-dash-4   10   5 ns/op",
			ok:   true,
			want: result{Name: "BenchmarkX/case-with-dash", Procs: 4, Iterations: 10, Count: 1,
				Metrics: map[string]metric{"ns/op": {5, 5, 5}}},
		},
		{name: "malformed iteration count", line: "BenchmarkBroken notanumber 5 ns/op", ok: false},
		{name: "bare name", line: "Benchmark", ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, ok := parseBenchLine(tc.line)
			if ok != tc.ok {
				t.Fatalf("ok=%v, want %v (%+v)", ok, tc.ok, r)
			}
			if !ok {
				return
			}
			if r.Name != tc.want.Name || r.Procs != tc.want.Procs ||
				r.Iterations != tc.want.Iterations || r.Count != tc.want.Count {
				t.Fatalf("parsed %+v, want %+v", r, tc.want)
			}
			if len(r.Metrics) != len(tc.want.Metrics) {
				t.Fatalf("metrics %v, want %v", r.Metrics, tc.want.Metrics)
			}
			for unit, want := range tc.want.Metrics {
				if r.Metrics[unit] != want {
					t.Fatalf("metric %s = %v, want %v", unit, r.Metrics[unit], want)
				}
			}
		})
	}
}

// TestConvertAggregatesRepeats: -count=N emits one line per repeat; convert
// must fold them into one result with Value=min and the min..max spread,
// keyed by (pkg, name, procs).
func TestConvertAggregatesRepeats(t *testing.T) {
	in := strings.NewReader(`goos: linux
goarch: amd64
pkg: accelwattch/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEstimateBatch-4   1000   3400 ns/op   64.00 kernels/op   0 B/op   0 allocs/op
BenchmarkEstimateBatch-4   1000   3300 ns/op   64.00 kernels/op   0 B/op   0 allocs/op
BenchmarkEstimateBatch-4   1000   3500 ns/op   64.00 kernels/op   0 B/op   0 allocs/op
PASS
pkg: accelwattch/internal/serve
BenchmarkServeMixedLoad-4   1000   95000 ns/op   2048 B/op   17 allocs/op
BenchmarkServeMixedLoad-4   1000   99000 ns/op   2100 B/op   17 allocs/op
PASS
`)
	doc, err := convert(in)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Format != "accelwattch-bench-v2" {
		t.Fatalf("format %q", doc.Format)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(doc.Results), doc.Results)
	}
	core := doc.Results[0]
	if core.Name != "BenchmarkEstimateBatch" || core.Pkg != "accelwattch/internal/core" ||
		core.Procs != 4 || core.Count != 3 {
		t.Fatalf("core result %+v", core)
	}
	if m := core.Metrics["ns/op"]; m.Value != 3300 || m.Min != 3300 || m.Max != 3500 {
		t.Fatalf("ns/op aggregate %+v", m)
	}
	if m := core.Metrics["kernels/op"]; m != (metric{64, 64, 64}) {
		t.Fatalf("custom unit aggregate %+v", m)
	}
	srv := doc.Results[1]
	if srv.Pkg != "accelwattch/internal/serve" || srv.Count != 2 {
		t.Fatalf("serve result %+v", srv)
	}
	if m := srv.Metrics["B/op"]; m.Value != 2048 || m.Max != 2100 {
		t.Fatalf("B/op aggregate %+v", m)
	}
	if doc.Env["cpu"] == "" || doc.Env["goos"] != "linux" {
		t.Fatalf("env %+v", doc.Env)
	}
}

func TestConvertRejectsEmptyInput(t *testing.T) {
	if _, err := convert(strings.NewReader("PASS\nok pkg 1s\n")); err == nil {
		t.Fatal("input without benchmark lines accepted")
	}
}

// TestMetricUnmarshalV1Compat: v1 baselines store metrics as bare numbers;
// they must read back as spreadless metrics so compare still works.
func TestMetricUnmarshalV1Compat(t *testing.T) {
	var m metric
	if err := m.UnmarshalJSON([]byte("100450")); err != nil {
		t.Fatal(err)
	}
	if m != (metric{100450, 100450, 100450}) {
		t.Fatalf("v1 number parsed as %+v", m)
	}
	if err := m.UnmarshalJSON([]byte(`{"value":3300,"min":3300,"max":3500}`)); err != nil {
		t.Fatal(err)
	}
	if m != (metric{3300, 3300, 3500}) {
		t.Fatalf("v2 object parsed as %+v", m)
	}
}

func benchDoc(ns, allocs float64) document {
	return document{
		Format: "accelwattch-bench-v2",
		Results: []result{{
			Name: "BenchmarkEstimateBatch", Count: 5, Iterations: 1000,
			Metrics: map[string]metric{
				"ns/op":     {ns, ns, ns * 1.05},
				"allocs/op": {allocs, allocs, allocs},
			},
		}},
	}
}

func TestCompareDocs(t *testing.T) {
	t.Run("identical passes", func(t *testing.T) {
		report, failures := compareDocs(benchDoc(3300, 0), benchDoc(3300, 0), 15, 0)
		if len(failures) != 0 {
			t.Fatalf("failures on identical docs: %v", failures)
		}
		if len(report) == 0 || !strings.Contains(report[0], "BenchmarkEstimateBatch") {
			t.Fatalf("report %v", report)
		}
	})
	t.Run("within limit passes", func(t *testing.T) {
		_, failures := compareDocs(benchDoc(3300, 0), benchDoc(3700, 0), 15, 0)
		if len(failures) != 0 {
			t.Fatalf("12%% regression failed the 15%% gate: %v", failures)
		}
	})
	t.Run("regression beyond limit fails", func(t *testing.T) {
		report, failures := compareDocs(benchDoc(3300, 0), benchDoc(3900, 0), 15, 0)
		if len(failures) != 1 || !strings.Contains(failures[0], "ns/op regressed") {
			t.Fatalf("18%% regression not caught: %v", failures)
		}
		// Side-by-side old -> new values appear in the report.
		if !strings.Contains(report[0], "3300") || !strings.Contains(report[0], "3900") {
			t.Fatalf("report lacks side-by-side values: %v", report)
		}
	})
	t.Run("speedup passes", func(t *testing.T) {
		_, failures := compareDocs(benchDoc(3300, 0), benchDoc(2000, 0), 15, 0)
		if len(failures) != 0 {
			t.Fatalf("speedup flagged: %v", failures)
		}
	})
	t.Run("single new allocation fails", func(t *testing.T) {
		_, failures := compareDocs(benchDoc(3300, 0), benchDoc(3300, 1), 15, 0)
		if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op grew") {
			t.Fatalf("alloc growth not caught: %v", failures)
		}
	})
	t.Run("alloc headroom respected", func(t *testing.T) {
		_, failures := compareDocs(benchDoc(3300, 10), benchDoc(3300, 12), 15, 2)
		if len(failures) != 0 {
			t.Fatalf("within alloc headroom yet failed: %v", failures)
		}
	})
	t.Run("missing benchmark fails", func(t *testing.T) {
		newDoc := benchDoc(3300, 0)
		newDoc.Results[0].Name = "BenchmarkRenamed"
		_, failures := compareDocs(benchDoc(3300, 0), newDoc, 15, 0)
		if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
			t.Fatalf("missing benchmark not caught: %v", failures)
		}
	})
	t.Run("v1 baseline compares against v2 run", func(t *testing.T) {
		oldDoc := document{Format: "accelwattch-bench-v1"}
		// Simulate a v1 read: spreadless metrics via the flexible unmarshal.
		var m metric
		if err := m.UnmarshalJSON([]byte("100450")); err != nil {
			t.Fatal(err)
		}
		oldDoc.Results = []result{{Name: "BenchmarkEstimateBatch", Iterations: 11284,
			Metrics: map[string]metric{"ns/op": m}}}
		_, failures := compareDocs(oldDoc, benchDoc(100000, 0), 15, 0)
		if len(failures) != 0 {
			t.Fatalf("v1 baseline comparison failed: %v", failures)
		}
	})
}
