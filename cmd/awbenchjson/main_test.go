package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkServeMixedLoad-8   12000   95012 ns/op   1234 B/op   17 allocs/op")
	if !ok {
		t.Fatal("well-formed line rejected")
	}
	if r.Name != "BenchmarkServeMixedLoad" || r.Procs != 8 || r.Iterations != 12000 {
		t.Fatalf("parsed %+v", r)
	}
	for unit, want := range map[string]float64{"ns/op": 95012, "B/op": 1234, "allocs/op": 17} {
		if r.Metrics[unit] != want {
			t.Fatalf("metric %s = %v, want %v", unit, r.Metrics[unit], want)
		}
	}

	// GOMAXPROCS=1 runs emit no -N suffix.
	r, ok = parseBenchLine("BenchmarkServeMixedLoad \t 11284\t    100450 ns/op")
	if !ok || r.Name != "BenchmarkServeMixedLoad" || r.Procs != 0 || r.Metrics["ns/op"] != 100450 {
		t.Fatalf("suffixless line parsed as %+v (ok=%v)", r, ok)
	}

	// Sub-benchmark names keep their slash path; only a trailing numeric
	// dash segment is a procs suffix.
	r, ok = parseBenchLine("BenchmarkX/case-with-dash-4   10   5 ns/op")
	if !ok {
		t.Fatal("sub-benchmark rejected")
	}
	if r.Procs != 0 && r.Name == "BenchmarkX/case-with-dash" {
		// acceptable: suffix split on the last dash
	} else if r.Procs != 0 || r.Name != "BenchmarkX/case-with-dash-4" {
		t.Fatalf("sub-benchmark parsed as %+v", r)
	}

	if _, ok := parseBenchLine("BenchmarkBroken notanumber 5 ns/op"); ok {
		t.Fatal("malformed iteration count accepted")
	}
	if _, ok := parseBenchLine("Benchmark"); ok {
		t.Fatal("bare name accepted")
	}
}
