// Command awbenchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark results can be checked in
// (BENCH_serve.json) and diffed across runs and CI uploads without parsing
// the free-text format downstream.
//
//	go test -run '^$' -bench . -benchtime=1000x -count=5 ./internal/serve/ | awbenchjson
//
// Format v2: repeated lines from -count=N runs are aggregated per benchmark
// (keyed by name, procs suffix, and package) into one result carrying the
// repeat count and, for every metric, the minimum (the stable point estimate
// under scheduler noise) plus the min..max spread. The run environment block
// records goos, goarch, cpu, and GOMAXPROCS. v1 documents (flat metric
// numbers, no spread) are still readable by the compare mode.
//
// Compare mode gates CI on a checked-in baseline:
//
//	awbenchjson -compare old.json new.json -max-regress-pct 15 -max-allocs-regress 0
//
// Every benchmark in old must exist in new; ns/op may regress at most
// -max-regress-pct percent and allocs/op at most -max-allocs-regress
// allocations. Old and new values are printed side by side for every
// benchmark; the exit status is 1 if any gate fails.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metric is one aggregated measurement. Value is the minimum across -count
// repeats; Min/Max record the observed spread. A bare JSON number (format v1)
// unmarshals as a spreadless metric, so old baselines stay comparable.
type metric struct {
	Value float64 `json:"value"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

func (m *metric) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] != '{' {
		var v float64
		if err := json.Unmarshal(b, &v); err != nil {
			return err
		}
		*m = metric{Value: v, Min: v, Max: v}
		return nil
	}
	type alias metric
	var a alias
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*m = metric(a)
	return nil
}

type result struct {
	Name       string            `json:"name"`
	Pkg        string            `json:"pkg,omitempty"`
	Procs      int               `json:"procs,omitempty"`
	Count      int               `json:"count"`
	Iterations int64             `json:"iterations"`
	Metrics    map[string]metric `json:"metrics"`
}

type document struct {
	Format  string            `json:"format"`
	Env     map[string]string `json:"env,omitempty"`
	Results []result          `json:"results"`
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-compare" {
		os.Exit(runCompare(args[1:]))
	}
	if len(args) > 0 {
		fmt.Fprintf(os.Stderr, "awbenchjson: unknown argument %q (convert mode reads stdin and takes no arguments)\n", args[0])
		os.Exit(2)
	}
	doc, err := convert(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "awbenchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "awbenchjson:", err)
		os.Exit(1)
	}
}

// convert parses `go test -bench` text into a v2 document, aggregating
// repeated lines (from -count=N) by benchmark identity.
func convert(in io.Reader) (document, error) {
	doc := document{Format: "accelwattch-bench-v2", Env: map[string]string{}, Results: []result{}}
	if gmp := os.Getenv("GOMAXPROCS"); gmp != "" {
		doc.Env["gomaxprocs"] = gmp
	}
	index := map[string]int{} // key -> position in doc.Results
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			// Tracked per-result: one stream may span several packages.
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			r.Pkg = pkg
			key := r.Pkg + "\x00" + r.Name + "\x00" + strconv.Itoa(r.Procs)
			i, seen := index[key]
			if !seen {
				index[key] = len(doc.Results)
				doc.Results = append(doc.Results, r)
				continue
			}
			doc.Results[i] = merge(doc.Results[i], r)
		}
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	if len(doc.Results) == 0 {
		return doc, fmt.Errorf("no benchmark result lines on stdin")
	}
	return doc, nil
}

// merge folds a repeat run into an aggregate: Value tracks the minimum,
// Min/Max the spread, Count the number of repeats. A metric missing from
// some repeats keeps the spread of the repeats that reported it.
func merge(agg, r result) result {
	agg.Count += r.Count
	if r.Iterations < agg.Iterations {
		agg.Iterations = r.Iterations
	}
	for unit, m := range r.Metrics {
		prev, ok := agg.Metrics[unit]
		if !ok {
			agg.Metrics[unit] = m
			continue
		}
		if m.Value < prev.Value {
			prev.Value = m.Value
		}
		if m.Min < prev.Min {
			prev.Min = m.Min
		}
		if m.Max > prev.Max {
			prev.Max = m.Max
		}
		agg.Metrics[unit] = prev
	}
	return agg
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkServeMixedLoad-8   12000   95012 ns/op   1234 B/op   17 allocs/op
//
// Custom b.ReportMetric units ("64.00 kernels/op") parse like any other
// value/unit pair.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return result{}, false
	}
	r := result{Name: fields[0], Count: 1, Metrics: map[string]metric{}}
	// The -N procs suffix follows the LAST dash; benchmark names themselves
	// may contain dashes.
	if i := strings.LastIndexByte(fields[0], '-'); i > 0 {
		if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
			r.Name, r.Procs = fields[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = metric{Value: v, Min: v, Max: v}
	}
	return r, true
}

// runCompare implements `-compare old.json new.json [-max-regress-pct N]
// [-max-allocs-regress N]`. Flags are parsed by hand because the positional
// file arguments precede them.
func runCompare(args []string) int {
	var files []string
	maxPct, maxAllocs := 15.0, 0.0
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-max-regress-pct", "-max-allocs-regress":
			if i+1 >= len(args) {
				fmt.Fprintf(os.Stderr, "awbenchjson: %s needs a value\n", args[i])
				return 2
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "awbenchjson: %s: %v\n", args[i], err)
				return 2
			}
			if args[i] == "-max-regress-pct" {
				maxPct = v
			} else {
				maxAllocs = v
			}
			i++
		default:
			if strings.HasPrefix(args[i], "-") {
				fmt.Fprintf(os.Stderr, "awbenchjson: unknown compare flag %q\n", args[i])
				return 2
			}
			files = append(files, args[i])
		}
	}
	if len(files) != 2 {
		fmt.Fprintln(os.Stderr, "usage: awbenchjson -compare old.json new.json [-max-regress-pct N] [-max-allocs-regress N]")
		return 2
	}
	oldDoc, err := loadDoc(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "awbenchjson:", err)
		return 1
	}
	newDoc, err := loadDoc(files[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "awbenchjson:", err)
		return 1
	}
	report, failures := compareDocs(oldDoc, newDoc, maxPct, maxAllocs)
	for _, l := range report {
		fmt.Println(l)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nawbenchjson: %d benchmark gate failure(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  FAIL:", f)
		}
		return 1
	}
	fmt.Printf("\nbench gate OK: %d benchmark(s) within -max-regress-pct %g, -max-allocs-regress %g\n",
		len(oldDoc.Results), maxPct, maxAllocs)
	return 0
}

func loadDoc(path string) (document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return document{}, err
	}
	var doc document
	if err := json.Unmarshal(b, &doc); err != nil {
		return document{}, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(doc.Format, "accelwattch-bench-") {
		return document{}, fmt.Errorf("%s: unrecognised format %q", path, doc.Format)
	}
	return doc, nil
}

// compareDocs gates new against old: every old benchmark must be present in
// new, ns/op may regress at most maxPct percent, and allocs/op may grow by
// at most maxAllocs. Benchmarks are matched by name so a GOMAXPROCS or
// package move does not silently drop the gate. Returns a side-by-side
// report (old -> new for every shared metric of interest) and the failures.
func compareDocs(oldDoc, newDoc document, maxPct, maxAllocs float64) (report, failures []string) {
	newBy := map[string]result{}
	for _, r := range newDoc.Results {
		newBy[r.Name] = r
	}
	names := make([]string, 0, len(oldDoc.Results))
	oldBy := map[string]result{}
	for _, r := range oldDoc.Results {
		if _, dup := oldBy[r.Name]; !dup {
			names = append(names, r.Name)
		}
		oldBy[r.Name] = r
	}
	sort.Strings(names)
	for _, name := range names {
		o := oldBy[name]
		n, ok := newBy[name]
		if !ok {
			report = append(report, fmt.Sprintf("%-32s MISSING in new run", name))
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing in new run", name))
			continue
		}
		oNs, nNs := o.Metrics["ns/op"].Value, n.Metrics["ns/op"].Value
		pct := 0.0
		if oNs > 0 {
			pct = (nNs - oNs) / oNs * 100
		}
		report = append(report, fmt.Sprintf("%-32s ns/op %12.1f -> %12.1f  (%+.1f%%)", name, oNs, nNs, pct))
		if pct > maxPct {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (%.1f -> %.1f), limit %g%%",
				name, pct, oNs, nNs, maxPct))
		}
		oA, oHas := o.Metrics["allocs/op"]
		nA, nHas := n.Metrics["allocs/op"]
		if oHas || nHas {
			delta := nA.Value - oA.Value
			report = append(report, fmt.Sprintf("%-32s allocs/op %8.0f -> %8.0f  (%+.0f)", "", oA.Value, nA.Value, delta))
			if delta > maxAllocs {
				failures = append(failures, fmt.Sprintf("%s: allocs/op grew by %.0f (%.0f -> %.0f), limit %g",
					name, delta, oA.Value, nA.Value, maxAllocs))
			}
		}
	}
	return report, failures
}
