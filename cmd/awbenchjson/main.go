// Command awbenchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark results can be checked in
// (BENCH_serve.json) and diffed across runs and CI uploads without parsing
// the free-text format downstream.
//
//	go test -run '^$' -bench BenchmarkServeMixedLoad ./internal/serve/ | awbenchjson
//
// The output carries the run environment (goos, goarch, pkg, cpu) and one
// record per benchmark line: name, parallelism suffix, iterations, and every
// reported metric (ns/op, B/op, allocs/op, custom units) keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Format  string            `json:"format"`
	Env     map[string]string `json:"env,omitempty"`
	Results []result          `json:"results"`
}

func main() {
	doc := document{Format: "accelwattch-bench-v1", Env: map[string]string{}, Results: []result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "awbenchjson:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "awbenchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "awbenchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkServeMixedLoad-8   12000   95012 ns/op   1234 B/op   17 allocs/op
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return result{}, false
	}
	r := result{Name: fields[0], Metrics: map[string]float64{}}
	// The -N procs suffix follows the LAST dash; benchmark names themselves
	// may contain dashes.
	if i := strings.LastIndexByte(fields[0], '-'); i > 0 {
		if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
			r.Name, r.Procs = fields[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
