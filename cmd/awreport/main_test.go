package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accelwattch/internal/config"
	"accelwattch/internal/core"
	"accelwattch/internal/obs"
)

// testBreakdown builds a breakdown whose components sum (in index order) to
// a deterministic total, mirroring how the pipeline emits events.
func testBreakdown(scale float64) core.Breakdown {
	var bd core.Breakdown
	for i := 0; i < core.NumComponents; i++ {
		bd.Watts[i] = scale * float64(i+1)
	}
	return bd
}

// writeLedger emits the given events through a real Ledger and writes the
// JSONL artifact, so the test ingests exactly the wire format the pipeline
// produces.
func writeLedger(t *testing.T, events ...obs.Event) string {
	t.Helper()
	led := obs.NewLedger("report-test")
	for _, ev := range events {
		led.Emit(ev)
	}
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := led.WriteFile(path); err != nil {
		t.Fatalf("writing ledger: %v", err)
	}
	return path
}

func breakdownEvent(kernel, variant string, bd core.Breakdown, measured float64) obs.Event {
	return obs.Event{
		Kind: obs.KindBreakdown, Stage: "eval/validate",
		Workload: kernel, Variant: variant,
		PowerW: bd.Total(), MeasuredW: measured, Breakdown: bd.Map(),
	}
}

func TestFromLedger(t *testing.T) {
	bd1, bd2 := testBreakdown(1), testBreakdown(2)
	path := writeLedger(t,
		obs.Event{Kind: obs.KindRunStart, Stage: "awvalidate"},
		breakdownEvent("gemm", "SASS_SIM", bd1, 120),
		breakdownEvent("stream", "SASS_SIM", bd2, 200),
		breakdownEvent("gemm", "HW", bd1, 120),
		obs.Event{Kind: obs.KindMeasure, Workload: "noise", PowerW: 55},
		obs.Event{Kind: obs.KindRunEnd, Reason: "ok"},
	)
	got, err := fromLedger(path)
	if err != nil {
		t.Fatalf("fromLedger: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d variants, want 2 (SASS_SIM, HW)", len(got))
	}
	if len(got["SASS_SIM"]) != 2 || len(got["HW"]) != 1 {
		t.Fatalf("row counts: SASS_SIM=%d HW=%d", len(got["SASS_SIM"]), len(got["HW"]))
	}
	r := got["SASS_SIM"][0]
	if r.Kernel != "gemm" || r.MeasuredW != 120 {
		t.Fatalf("first row = %+v", r)
	}
	if r.TotalW != bd1.Total() {
		t.Fatalf("TotalW %v, want %v", r.TotalW, bd1.Total())
	}
	if r.Breakdown != bd1 {
		t.Fatal("breakdown did not round-trip through the ledger")
	}
	// Non-breakdown events (run_start, measure, run_end) must be ignored,
	// not misread as attribution rows.
	total := 0
	for _, rows := range got {
		total += len(rows)
	}
	if total != 3 {
		t.Fatalf("ingested %d rows, want 3", total)
	}
}

func TestFromLedgerRejectsBrokenSumInvariant(t *testing.T) {
	bd := testBreakdown(1)
	ev := breakdownEvent("gemm", "SASS_SIM", bd, 120)
	ev.PowerW = bd.Total() * 1.25 // components no longer sum to the total
	path := writeLedger(t, ev)
	_, err := fromLedger(path)
	if err == nil || !strings.Contains(err.Error(), "corrupted ledger") {
		t.Fatalf("fromLedger accepted a broken sum invariant: %v", err)
	}
}

func TestFromLedgerRejectsUnknownComponent(t *testing.T) {
	bd := testBreakdown(1)
	ev := breakdownEvent("gemm", "SASS_SIM", bd, 120)
	ev.Breakdown["flux_capacitor"] = 1.21
	path := writeLedger(t, ev)
	_, err := fromLedger(path)
	if err == nil || !strings.Contains(err.Error(), "unknown component") {
		t.Fatalf("fromLedger accepted an unknown component: %v", err)
	}
}

func TestFromLedgerRejectsMalformedJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.jsonl")
	content := `{"seq":1,"kind":"breakdown","workload":"ok","power_w":0}
{"seq":2,"kind":"breakdown","workload":"broken"
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fromLedger(path); err == nil {
		t.Fatal("fromLedger accepted malformed JSONL")
	}
	if _, err := fromLedger(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("fromLedger accepted a missing file")
	}
}

func TestCloseEnough(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{100, 100, true},
		{100, 100 + 1e-8, true}, // JSON round-trip rounding scale
		{100, 100.001, false},   // real corruption
		{0, 0, true},
		{1e-300, 1e-300, true},
		{100, -100, false},
		{0, 1, false},
	}
	for _, tc := range cases {
		if got := closeEnough(tc.a, tc.b); got != tc.want {
			t.Errorf("closeEnough(%g, %g) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMatchHint(t *testing.T) {
	if h := matchHint(""); !strings.Contains(h, "ledger") {
		t.Errorf("empty-variant hint %q should mention the ledger", h)
	}
	if h := matchHint("HW"); !strings.Contains(h, "HW") {
		t.Errorf("variant hint %q should name the variant", h)
	}
}

func TestPrintTable(t *testing.T) {
	// printTable writes to stdout; capture it to check shape for both the
	// grouped and per-component layouts.
	capture := func(fn func()) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		fn()
		w.Close()
		os.Stdout = old
		buf := make([]byte, 1<<16)
		n, _ := r.Read(buf)
		return string(buf[:n])
	}
	rows := []row{
		{Kernel: "zz_last", MeasuredW: 100, TotalW: 110, Breakdown: testBreakdown(1)},
		{Kernel: "aa_first", MeasuredW: 50, TotalW: 55, Breakdown: testBreakdown(0.5)},
	}
	out := capture(func() { printTable("SASS_SIM", rows, false) })
	if !strings.Contains(out, "SASS_SIM") || !strings.Contains(out, "aa_first") {
		t.Fatalf("grouped table missing content:\n%s", out)
	}
	if strings.Index(out, "aa_first") > strings.Index(out, "zz_last") {
		t.Fatal("rows not sorted by kernel name")
	}
	out = capture(func() { printTable("HW", rows, true) })
	if !strings.Contains(out, core.CompDRAMMC.String()) {
		t.Fatalf("per-component table missing component columns:\n%s", out)
	}
}

// TestLedgerRowsMatchModelEstimate closes the loop: a breakdown emitted
// from a real model estimate must ingest with the sum invariant intact.
func TestLedgerRowsMatchModelEstimate(t *testing.T) {
	m := &core.Model{
		Arch:         config.Volta(),
		BaseEnergyPJ: core.InitialEnergiesPJ(),
		ConstW:       32.5,
		IdleSMW:      0.1,
		RefSMs:       80,
	}
	for i := range m.Scale {
		m.Scale[i] = 0.1
	}
	for i := range m.Div {
		m.Div[i] = core.DivModel{FirstLaneW: 30, AddLaneW: 0.7}
	}
	a := core.Activity{Cycles: 1e6, ActiveSMs: 80, AvgLanes: 32, Mix: core.MixIntFP}
	a.Counts[core.CompALU] = 5e8
	a.Counts[core.CompRF] = 2e9
	bd, err := m.Estimate(a)
	if err != nil {
		t.Fatal(err)
	}
	path := writeLedger(t, obs.Event{
		Kind: obs.KindBreakdown, Workload: "real", Variant: "HW",
		PowerW: bd.Total(), Breakdown: bd.Map(),
	})
	got, err := fromLedger(path)
	if err != nil {
		t.Fatalf("fromLedger rejected a genuine model breakdown: %v", err)
	}
	if got["HW"][0].TotalW != bd.Total() {
		t.Fatal("total did not survive the ledger round trip")
	}
}
