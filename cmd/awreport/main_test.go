package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accelwattch/internal/attr"
	"accelwattch/internal/config"
	"accelwattch/internal/core"
	"accelwattch/internal/obs"
)

// testBreakdown builds a breakdown whose components sum (in index order) to
// a deterministic total, mirroring how the pipeline emits events.
func testBreakdown(scale float64) core.Breakdown {
	var bd core.Breakdown
	for i := 0; i < core.NumComponents; i++ {
		bd.Watts[i] = scale * float64(i+1)
	}
	return bd
}

// writeLedger emits the given events through a real Ledger and writes the
// JSONL artifact, so the test ingests exactly the wire format the pipeline
// produces.
func writeLedger(t *testing.T, events ...obs.Event) string {
	t.Helper()
	led := obs.NewLedger("report-test")
	for _, ev := range events {
		led.Emit(ev)
	}
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := led.WriteFile(path); err != nil {
		t.Fatalf("writing ledger: %v", err)
	}
	return path
}

func breakdownEvent(kernel, variant string, bd core.Breakdown, measured float64) obs.Event {
	return obs.Event{
		Kind: obs.KindBreakdown, Stage: "eval/validate",
		Workload: kernel, Variant: variant,
		PowerW: bd.Total(), MeasuredW: measured, Breakdown: bd.Map(),
	}
}

func TestFromLedger(t *testing.T) {
	bd1, bd2 := testBreakdown(1), testBreakdown(2)
	path := writeLedger(t,
		obs.Event{Kind: obs.KindRunStart, Stage: "awvalidate"},
		breakdownEvent("gemm", "SASS_SIM", bd1, 120),
		breakdownEvent("stream", "SASS_SIM", bd2, 200),
		breakdownEvent("gemm", "HW", bd1, 120),
		obs.Event{Kind: obs.KindMeasure, Workload: "noise", PowerW: 55},
		obs.Event{Kind: obs.KindRunEnd, Reason: "ok"},
	)
	got, err := fromLedger(path)
	if err != nil {
		t.Fatalf("fromLedger: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d variants, want 2 (SASS_SIM, HW)", len(got))
	}
	if len(got["SASS_SIM"]) != 2 || len(got["HW"]) != 1 {
		t.Fatalf("row counts: SASS_SIM=%d HW=%d", len(got["SASS_SIM"]), len(got["HW"]))
	}
	r := got["SASS_SIM"][0]
	if r.Kernel != "gemm" || r.MeasuredW != 120 {
		t.Fatalf("first row = %+v", r)
	}
	if r.TotalW != bd1.Total() {
		t.Fatalf("TotalW %v, want %v", r.TotalW, bd1.Total())
	}
	if r.Breakdown != bd1 {
		t.Fatal("breakdown did not round-trip through the ledger")
	}
	// Non-breakdown events (run_start, measure, run_end) must be ignored,
	// not misread as attribution rows.
	total := 0
	for _, rows := range got {
		total += len(rows)
	}
	if total != 3 {
		t.Fatalf("ingested %d rows, want 3", total)
	}
}

func TestFromLedgerRejectsBrokenSumInvariant(t *testing.T) {
	bd := testBreakdown(1)
	ev := breakdownEvent("gemm", "SASS_SIM", bd, 120)
	ev.PowerW = bd.Total() * 1.25 // components no longer sum to the total
	path := writeLedger(t, ev)
	_, err := fromLedger(path)
	if err == nil || !strings.Contains(err.Error(), "corrupted ledger") {
		t.Fatalf("fromLedger accepted a broken sum invariant: %v", err)
	}
}

func TestFromLedgerRejectsUnknownComponent(t *testing.T) {
	bd := testBreakdown(1)
	ev := breakdownEvent("gemm", "SASS_SIM", bd, 120)
	ev.Breakdown["flux_capacitor"] = 1.21
	path := writeLedger(t, ev)
	_, err := fromLedger(path)
	if err == nil || !strings.Contains(err.Error(), "unknown component") {
		t.Fatalf("fromLedger accepted an unknown component: %v", err)
	}
}

func TestFromLedgerRejectsMalformedJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.jsonl")
	content := `{"seq":1,"kind":"breakdown","workload":"ok","power_w":0}
{"seq":2,"kind":"breakdown","workload":"broken"
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fromLedger(path); err == nil {
		t.Fatal("fromLedger accepted malformed JSONL")
	}
	if _, err := fromLedger(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("fromLedger accepted a missing file")
	}
}

func TestCloseEnough(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{100, 100, true},
		{100, 100 + 1e-8, true}, // JSON round-trip rounding scale
		{100, 100.001, false},   // real corruption
		{0, 0, true},
		{1e-300, 1e-300, true},
		{100, -100, false},
		{0, 1, false},
	}
	for _, tc := range cases {
		if got := closeEnough(tc.a, tc.b); got != tc.want {
			t.Errorf("closeEnough(%g, %g) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMatchHint(t *testing.T) {
	if h := matchHint(""); !strings.Contains(h, "ledger") {
		t.Errorf("empty-variant hint %q should mention the ledger", h)
	}
	if h := matchHint("HW"); !strings.Contains(h, "HW") {
		t.Errorf("variant hint %q should name the variant", h)
	}
}

func TestPrintTable(t *testing.T) {
	// printTable writes to stdout; capture it to check shape for both the
	// grouped and per-component layouts.
	capture := func(fn func()) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		fn()
		w.Close()
		os.Stdout = old
		buf := make([]byte, 1<<16)
		n, _ := r.Read(buf)
		return string(buf[:n])
	}
	rows := []row{
		{Kernel: "zz_last", MeasuredW: 100, TotalW: 110, Breakdown: testBreakdown(1)},
		{Kernel: "aa_first", MeasuredW: 50, TotalW: 55, Breakdown: testBreakdown(0.5)},
	}
	out := capture(func() { printTable("SASS_SIM", rows, false) })
	if !strings.Contains(out, "SASS_SIM") || !strings.Contains(out, "aa_first") {
		t.Fatalf("grouped table missing content:\n%s", out)
	}
	if strings.Index(out, "aa_first") > strings.Index(out, "zz_last") {
		t.Fatal("rows not sorted by kernel name")
	}
	out = capture(func() { printTable("HW", rows, true) })
	if !strings.Contains(out, core.CompDRAMMC.String()) {
		t.Fatalf("per-component table missing component columns:\n%s", out)
	}
}

// TestLedgerRowsMatchModelEstimate closes the loop: a breakdown emitted
// from a real model estimate must ingest with the sum invariant intact.
func TestLedgerRowsMatchModelEstimate(t *testing.T) {
	m := &core.Model{
		Arch:         config.Volta(),
		BaseEnergyPJ: core.InitialEnergiesPJ(),
		ConstW:       32.5,
		IdleSMW:      0.1,
		RefSMs:       80,
	}
	for i := range m.Scale {
		m.Scale[i] = 0.1
	}
	for i := range m.Div {
		m.Div[i] = core.DivModel{FirstLaneW: 30, AddLaneW: 0.7}
	}
	a := core.Activity{Cycles: 1e6, ActiveSMs: 80, AvgLanes: 32, Mix: core.MixIntFP}
	a.Counts[core.CompALU] = 5e8
	a.Counts[core.CompRF] = 2e9
	bd, err := m.Estimate(a)
	if err != nil {
		t.Fatal(err)
	}
	path := writeLedger(t, obs.Event{
		Kind: obs.KindBreakdown, Workload: "real", Variant: "HW",
		PowerW: bd.Total(), Breakdown: bd.Map(),
	})
	got, err := fromLedger(path)
	if err != nil {
		t.Fatalf("fromLedger rejected a genuine model breakdown: %v", err)
	}
	if got["HW"][0].TotalW != bd.Total() {
		t.Fatal("total did not survive the ledger round trip")
	}
}

func energyEvent(tenant string, ticks int64, activeJ, idleJ float64) obs.Event {
	return obs.Event{
		Kind: obs.KindEnergy, Stage: "attr", Tenant: tenant, Ticks: ticks,
		JoulesActive: activeJ, JoulesIdle: idleJ, JoulesTotal: activeJ + idleJ,
	}
}

func TestEnergyFromLedger(t *testing.T) {
	// A mixed ledger: collector windows (KindEnergy), a serve-charged
	// estimate (KindBreakdown with Tenant set), and unrelated events that
	// must be skipped.
	bd := testBreakdown(1)
	served := breakdownEvent("gemm", "SASS_SIM", bd, 120)
	served.Tenant = "model-a"
	served.Ticks = 1
	served.JoulesActive, served.JoulesIdle = 0.25, 0.05
	served.JoulesTotal = 0.25 + 0.05
	path := writeLedger(t,
		obs.Event{Kind: obs.KindRunStart, Stage: "awmeterd"},
		energyEvent("tenant-b", 100, 10, 2),
		energyEvent("tenant-a", 100, 4, 1),
		served,
		energyEvent("tenant-b", 50, 5, 1),
		breakdownEvent("stream", "HW", bd, 200), // uncharged: no tenant
		obs.Event{Kind: obs.KindRunEnd, Reason: "ok"},
	)
	rows, err := energyFromLedger(path)
	if err != nil {
		t.Fatalf("energyFromLedger: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d tenants, want 3: %+v", len(rows), rows)
	}
	// Sorted by tenant name.
	if rows[0].Tenant != "model-a" || rows[1].Tenant != "tenant-a" || rows[2].Tenant != "tenant-b" {
		t.Fatalf("tenant order: %+v", rows)
	}
	b := rows[2]
	if b.Events != 2 || b.Ticks != 150 || b.ActiveJ != 15 || b.IdleJ != 3 || b.TotalJ != 18 {
		t.Fatalf("tenant-b position: %+v", b)
	}
	if rows[0].TotalJ != 0.3 || rows[0].Ticks != 1 {
		t.Fatalf("serve-charged row: %+v", rows[0])
	}
}

func TestEnergyFromLedgerRejectsBrokenSplit(t *testing.T) {
	ev := energyEvent("tenant-x", 10, 3, 1)
	ev.JoulesTotal = 4.0000001 // not active+idle
	path := writeLedger(t, ev)
	if _, err := energyFromLedger(path); err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("broken domain split not rejected: %v", err)
	}
}

func TestEnergyFromLedgerEmpty(t *testing.T) {
	path := writeLedger(t, obs.Event{Kind: obs.KindRunStart})
	if _, err := energyFromLedger(path); err == nil || !strings.Contains(err.Error(), "no energy attribution") {
		t.Fatalf("empty ledger not diagnosed: %v", err)
	}
}

func TestPrintChargeback(t *testing.T) {
	var sb strings.Builder
	printChargeback(&sb, []chargeRow{
		{Tenant: "a", Events: 2, Ticks: 20, ActiveJ: 30, IdleJ: 10, TotalJ: 40},
		{Tenant: "b", Events: 1, Ticks: 10, ActiveJ: 45, IdleJ: 15, TotalJ: 60},
	})
	out := sb.String()
	for _, want := range []string{"2 tenants", "active J", "60.0%", "40.0%", "TOTAL", "100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chargeback table missing %q:\n%s", want, out)
		}
	}
}

// The chargeback loop closes end to end: a ledger produced by a real
// collector run ingests with every invariant intact and the fleet total
// matching the collector's own snapshot.
func TestChargebackFromCollectorLedger(t *testing.T) {
	led := obs.NewLedger("chargeback-e2e")
	reg := obs.NewRegistry()
	reg.SetLedger(led)
	m, err := attr.ReferenceModel(config.Volta())
	if err != nil {
		t.Fatal(err)
	}
	c, err := attr.New(attr.Config{
		Model: m, Registry: reg, Tenants: 6, Workers: 2, Seed: 7,
		TickSeconds: 1e-3, WindowTicks: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(50)
	c.Flush()

	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := led.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	rows, err := energyFromLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d tenants, want 6", len(rows))
	}
	snap := c.Snapshot()
	byName := make(map[string]float64, len(snap))
	for _, te := range snap {
		byName[te.Tenant] = te.TotalJ
	}
	for _, r := range rows {
		want, ok := byName[r.Tenant]
		if !ok {
			t.Fatalf("ledger tenant %s unknown to the collector", r.Tenant)
		}
		if !closeEnough(r.TotalJ, want) {
			t.Fatalf("%s: ledger total %g vs collector %g", r.Tenant, r.TotalJ, want)
		}
	}
}
