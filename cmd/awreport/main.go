// Command awreport renders power-attribution reports: per-kernel tables of
// which model components consumed the estimated watts, per variant. It
// feeds on either a ledger artifact written by another command
// (awtune/awvalidate/awexport -ledger-out) or a live run of the pipeline:
//
//	awvalidate -ledger-out ledger.jsonl && awreport -ledger ledger.jsonl
//	awreport                # tune + validate a live Volta session
//
// Columns default to the coarse Figure 8/9 groups of the paper;
// -components switches to all 25 raw model components. Every row's
// components sum bit-identically to its estimated total — the attribution
// invariant the eval tests enforce — and awreport re-checks it on the way
// in, so a corrupted ledger is reported rather than rendered.
//
// -energy switches to the chargeback report: the per-tenant joules ledger
// accumulated by awmeterd's attribution windows and awserve's per-request
// energy charges, split by idle/active power domain with each tenant's
// share of the fleet total:
//
//	awmeterd -once -ticks 500 -ledger-out ledger.jsonl >/dev/null
//	awreport -energy -ledger ledger.jsonl
//
// The same corruption stance applies: every ingested event's joules_total
// must equal joules_active+joules_idle bit-for-bit (the encoding
// round-trips floats exactly), or the ledger is rejected.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"

	"accelwattch"
	"accelwattch/internal/attr"
	"accelwattch/internal/cli"
	"accelwattch/internal/core"
	"accelwattch/internal/eval"
	"accelwattch/internal/obs"
	"accelwattch/internal/workloads"
)

// row is one kernel's attribution line, variant-scoped. Category is set
// only for inference-pack rows (ledger events and by-category live runs
// carry the tag; classic Table 4 rows leave it empty).
type row struct {
	Kernel    string
	Category  string
	MeasuredW float64
	TotalW    float64
	Breakdown core.Breakdown
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("awreport: ")
	var (
		ledgerPath = flag.String("ledger", "", "read breakdowns from this JSONL ledger instead of running the pipeline")
		components = flag.Bool("components", false, "print all 25 raw components instead of the Figure 8/9 groups")
		energy     = flag.Bool("energy", false, "render the per-tenant energy chargeback table from the ledger's attribution events")
		variant    = flag.String("variant", "", "only report this variant (SASS_SIM, PTX_SIM, HW, HYBRID)")
		byCategory = flag.Bool("by-category", false, "fold attribution rows by inference-pack category instead of per kernel (live runs validate the inference pack)")
		archName   = flag.String("arch", "volta", "architecture for live runs (volta, pascal, turing)")
		full       = flag.Bool("full", false, "use the full-fidelity workload scale for live runs")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "execution-engine worker count for live runs")
	)
	traceOut, ledgerOut := cli.Artifacts()
	flag.Parse()

	if *energy {
		if *ledgerPath == "" {
			log.Fatal("-energy needs -ledger (attribution events come from awmeterd or awserve, not live runs)")
		}
		rows, err := energyFromLedger(*ledgerPath)
		if err != nil {
			log.Fatal(err)
		}
		printChargeback(os.Stdout, rows)
		return
	}

	var byVariant map[string][]row
	var err error
	if *ledgerPath != "" {
		byVariant, err = fromLedger(*ledgerPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		byVariant, err = fromLiveRun(*archName, *full, *workers, *byCategory, *traceOut, *ledgerOut)
		if err != nil {
			log.Fatal(err)
		}
	}

	variants := make([]string, 0, len(byVariant))
	for v := range byVariant {
		if *variant != "" && v != *variant {
			continue
		}
		variants = append(variants, v)
	}
	if len(variants) == 0 {
		log.Fatalf("no breakdown records%s", matchHint(*variant))
	}
	sort.Strings(variants)
	for _, v := range variants {
		if *byCategory {
			if err := printCategoryTable(v, byVariant[v]); err != nil {
				log.Fatal(err)
			}
			continue
		}
		printTable(v, byVariant[v], *components)
	}
}

func matchHint(variant string) string {
	if variant == "" {
		return " in the ledger (was it written by a validation run?)"
	}
	return fmt.Sprintf(" for variant %q", variant)
}

// fromLedger reconstructs attribution rows from KindBreakdown events,
// re-verifying that each event's components sum to its reported power
// (tolerating only float-printing rounding from the JSON round trip).
func fromLedger(path string) (map[string][]row, error) {
	events, err := obs.ReadLedgerFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]row)
	for i, ev := range events {
		if ev.Kind != obs.KindBreakdown {
			continue
		}
		bd, err := core.BreakdownFromMap(ev.Breakdown)
		if err != nil {
			return nil, fmt.Errorf("%s: event %d (%s): %w", path, i, ev.Workload, err)
		}
		if sum := bd.Total(); !closeEnough(sum, ev.PowerW) {
			return nil, fmt.Errorf("%s: event %d (%s): components sum to %g W but the event reports %g W — corrupted ledger",
				path, i, ev.Workload, sum, ev.PowerW)
		}
		out[ev.Variant] = append(out[ev.Variant], row{
			Kernel: ev.Workload, Category: ev.Category, MeasuredW: ev.MeasuredW, TotalW: ev.PowerW, Breakdown: bd,
		})
	}
	return out, nil
}

// closeEnough compares a recomputed component sum against the recorded
// total: bit-identical in-process, so the only slack allowed is the last
// ulp-level rounding a JSON encode/decode of the summands can introduce.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// fromLiveRun tunes a session and converts its four-variant validation
// results — attribution straight from the model, no ledger needed. With
// byCategory the run validates the category-tagged AI-inference pack
// instead of the classic Table 4 suite.
func fromLiveRun(archName string, full bool, workers int, byCategory bool, traceOut, ledgerOut string) (map[string][]row, error) {
	var arch *accelwattch.Arch
	switch archName {
	case "volta":
		arch = accelwattch.Volta()
	case "pascal":
		arch = accelwattch.Pascal()
	case "turing":
		arch = accelwattch.Turing()
	default:
		return nil, fmt.Errorf("unknown architecture %q", archName)
	}
	sc := accelwattch.Quick
	if full {
		sc = accelwattch.Full
	}
	run := cli.Start("awreport", arch.Name, traceOut, ledgerOut)
	fmt.Fprintf(os.Stderr, "awreport: tuning %s and validating all variants...\n", arch.Name)
	sess, err := accelwattch.NewSessionWithOptions(arch, sc, accelwattch.SessionOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]row)
	if byCategory {
		all, err := sess.ValidateAllByCategory()
		if err != nil {
			return nil, err
		}
		for v, res := range all {
			for _, k := range res.Kernels {
				out[v.String()] = append(out[v.String()], row{
					Kernel: k.Name, Category: string(k.Category), MeasuredW: k.MeasuredW, TotalW: k.EstimatedW, Breakdown: k.Breakdown,
				})
			}
		}
	} else {
		all, err := sess.ValidateAll()
		if err != nil {
			return nil, err
		}
		for v, res := range all {
			for _, k := range res.Kernels {
				out[v.String()] = append(out[v.String()], row{
					Kernel: k.Name, MeasuredW: k.MeasuredW, TotalW: k.EstimatedW, Breakdown: k.Breakdown,
				})
			}
		}
	}
	if err := run.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// chargeRow is one tenant's accumulated energy ledger position.
type chargeRow struct {
	Tenant  string
	Events  int
	Ticks   int64
	ActiveJ float64
	IdleJ   float64
	TotalJ  float64
}

// energyFromLedger folds the ledger's energy-carrying events — KindEnergy
// attribution windows from the streaming collector, plus KindBreakdown
// estimate events awserve charged (Tenant set) — into per-tenant ledger
// positions. Each event's domain-split invariant is re-verified bit-for-bit
// on ingestion: the JSONL encoding round-trips floats exactly, so any
// mismatch means a corrupted or hand-edited ledger, not rounding.
func energyFromLedger(path string) ([]chargeRow, error) {
	events, err := obs.ReadLedgerFile(path)
	if err != nil {
		return nil, err
	}
	idx := make(map[string]int)
	var rows []chargeRow
	for i, ev := range events {
		if ev.Tenant == "" {
			continue
		}
		if math.Float64bits(ev.JoulesTotal) != math.Float64bits(ev.JoulesActive+ev.JoulesIdle) {
			return nil, fmt.Errorf("%s: event %d (tenant %s): joules_total %g is not bit-exactly active %g + idle %g — corrupted ledger",
				path, i, ev.Tenant, ev.JoulesTotal, ev.JoulesActive, ev.JoulesIdle)
		}
		j, ok := idx[ev.Tenant]
		if !ok {
			j = len(rows)
			idx[ev.Tenant] = j
			rows = append(rows, chargeRow{Tenant: ev.Tenant})
		}
		r := &rows[j]
		r.Events++
		r.Ticks += ev.Ticks
		r.ActiveJ += ev.JoulesActive
		r.IdleJ += ev.JoulesIdle
		r.TotalJ += ev.JoulesTotal
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no energy attribution events (was the ledger written by awmeterd or awserve?)", path)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Tenant < rows[j].Tenant })
	return rows, nil
}

// printChargeback renders the per-tenant chargeback table: joules by power
// domain, each tenant's share of the fleet total, and a fleet footer.
func printChargeback(out io.Writer, rows []chargeRow) {
	var fleetA, fleetI, fleetT float64
	var fleetEvents int
	for _, r := range rows {
		fleetA += r.ActiveJ
		fleetI += r.IdleJ
		fleetT += r.TotalJ
		fleetEvents += r.Events
	}
	fmt.Fprintf(out, "== per-tenant energy chargeback (%d tenants) ==\n", len(rows))
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "tenant\tevents\tticks\tactive J\tidle J\ttotal J\tshare\t")
	for _, r := range rows {
		share := 0.0
		if fleetT > 0 {
			share = 100 * r.TotalJ / fleetT
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.6g\t%.6g\t%.6g\t%.1f%%\t\n",
			r.Tenant, r.Events, r.Ticks, r.ActiveJ, r.IdleJ, r.TotalJ, share)
	}
	fmt.Fprintf(w, "TOTAL\t%d\t\t%.6g\t%.6g\t%.6g\t\t\n", fleetEvents, fleetA, fleetI, fleetT)
	w.Flush()
	fmt.Fprintln(out)
}

// printCategoryTable folds one variant's attribution rows by their
// inference-pack category tag: kernel count, mean measured and estimated
// watts, MAPE, and the category's mean idle-domain share (the parked rows
// are all idle by construction). Rows without a category tag mean the
// source was a classic Table 4 run, which is an error — the caller asked
// for a by-category report the data cannot support.
func printCategoryTable(variant string, rows []row) error {
	type agg struct {
		n           int
		measW, estW float64
		apeSum      float64
		idleW, totW float64
	}
	byCat := map[string]*agg{}
	var order []string
	for _, cat := range workloads.Categories() {
		order = append(order, string(cat))
	}
	tagged := 0
	for _, r := range rows {
		if r.Category == "" {
			continue
		}
		tagged++
		a := byCat[r.Category]
		if a == nil {
			a = &agg{}
			byCat[r.Category] = a
			found := false
			for _, c := range order {
				if c == r.Category {
					found = true
				}
			}
			if !found {
				order = append(order, r.Category)
			}
		}
		a.n++
		a.measW += r.MeasuredW
		a.estW += r.TotalW
		if r.MeasuredW != 0 {
			a.apeSum += 100 * math.Abs(r.TotalW-r.MeasuredW) / math.Abs(r.MeasuredW)
		}
		s := attr.Split(&r.Breakdown)
		a.idleW += s.IdleW
		a.totW += s.TotalW()
	}
	if tagged == 0 {
		return fmt.Errorf("variant %s: no category-tagged rows (ledger written before the inference pack, or a Table 4 run?)", variant)
	}
	fmt.Printf("== %s: per-category power attribution (%d kernels) ==\n", variant, tagged)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "category\tkernels\tmeas W\test W\tMAPE\tidle share\t")
	for _, cat := range order {
		a := byCat[cat]
		if a == nil {
			continue
		}
		n := float64(a.n)
		idleShare := 0.0
		if a.totW > 0 {
			idleShare = 100 * a.idleW / a.totW
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.2f%%\t%.1f%%\t\n",
			cat, a.n, a.measW/n, a.estW/n, a.apeSum/n, idleShare)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printTable(variant string, rows []row, perComponent bool) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Kernel < rows[j].Kernel })
	fmt.Printf("== %s: per-kernel power attribution (W) ==\n", variant)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)

	var cols []string
	if perComponent {
		for c := 0; c < core.NumComponents; c++ {
			cols = append(cols, core.Component(c).String())
		}
	} else {
		for g := eval.Group(0); g < eval.NumGroups; g++ {
			cols = append(cols, g.String())
		}
	}
	fmt.Fprint(w, "kernel\tmeas\test")
	for _, c := range cols {
		fmt.Fprint(w, "\t", c)
	}
	fmt.Fprintln(w, "\t")

	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f", r.Kernel, r.MeasuredW, r.TotalW)
		if perComponent {
			for c := 0; c < core.NumComponents; c++ {
				fmt.Fprintf(w, "\t%.2f", r.Breakdown.Watts[c])
			}
		} else {
			g := eval.GroupBreakdown(r.Breakdown)
			for i := eval.Group(0); i < eval.NumGroups; i++ {
				fmt.Fprintf(w, "\t%.2f", g.Watts[i])
			}
		}
		fmt.Fprintln(w, "\t")
	}
	w.Flush()
	fmt.Println()
}
