// Command awreport renders power-attribution reports: per-kernel tables of
// which model components consumed the estimated watts, per variant. It
// feeds on either a ledger artifact written by another command
// (awtune/awvalidate/awexport -ledger-out) or a live run of the pipeline:
//
//	awvalidate -ledger-out ledger.jsonl && awreport -ledger ledger.jsonl
//	awreport                # tune + validate a live Volta session
//
// Columns default to the coarse Figure 8/9 groups of the paper;
// -components switches to all 25 raw model components. Every row's
// components sum bit-identically to its estimated total — the attribution
// invariant the eval tests enforce — and awreport re-checks it on the way
// in, so a corrupted ledger is reported rather than rendered.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"

	"accelwattch"
	"accelwattch/internal/cli"
	"accelwattch/internal/core"
	"accelwattch/internal/eval"
	"accelwattch/internal/obs"
)

// row is one kernel's attribution line, variant-scoped.
type row struct {
	Kernel    string
	MeasuredW float64
	TotalW    float64
	Breakdown core.Breakdown
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("awreport: ")
	var (
		ledgerPath = flag.String("ledger", "", "read breakdowns from this JSONL ledger instead of running the pipeline")
		components = flag.Bool("components", false, "print all 25 raw components instead of the Figure 8/9 groups")
		variant    = flag.String("variant", "", "only report this variant (SASS_SIM, PTX_SIM, HW, HYBRID)")
		archName   = flag.String("arch", "volta", "architecture for live runs (volta, pascal, turing)")
		full       = flag.Bool("full", false, "use the full-fidelity workload scale for live runs")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "execution-engine worker count for live runs")
	)
	traceOut, ledgerOut := cli.Artifacts()
	flag.Parse()

	var byVariant map[string][]row
	var err error
	if *ledgerPath != "" {
		byVariant, err = fromLedger(*ledgerPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		byVariant, err = fromLiveRun(*archName, *full, *workers, *traceOut, *ledgerOut)
		if err != nil {
			log.Fatal(err)
		}
	}

	variants := make([]string, 0, len(byVariant))
	for v := range byVariant {
		if *variant != "" && v != *variant {
			continue
		}
		variants = append(variants, v)
	}
	if len(variants) == 0 {
		log.Fatalf("no breakdown records%s", matchHint(*variant))
	}
	sort.Strings(variants)
	for _, v := range variants {
		printTable(v, byVariant[v], *components)
	}
}

func matchHint(variant string) string {
	if variant == "" {
		return " in the ledger (was it written by a validation run?)"
	}
	return fmt.Sprintf(" for variant %q", variant)
}

// fromLedger reconstructs attribution rows from KindBreakdown events,
// re-verifying that each event's components sum to its reported power
// (tolerating only float-printing rounding from the JSON round trip).
func fromLedger(path string) (map[string][]row, error) {
	events, err := obs.ReadLedgerFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]row)
	for i, ev := range events {
		if ev.Kind != obs.KindBreakdown {
			continue
		}
		bd, err := core.BreakdownFromMap(ev.Breakdown)
		if err != nil {
			return nil, fmt.Errorf("%s: event %d (%s): %w", path, i, ev.Workload, err)
		}
		if sum := bd.Total(); !closeEnough(sum, ev.PowerW) {
			return nil, fmt.Errorf("%s: event %d (%s): components sum to %g W but the event reports %g W — corrupted ledger",
				path, i, ev.Workload, sum, ev.PowerW)
		}
		out[ev.Variant] = append(out[ev.Variant], row{
			Kernel: ev.Workload, MeasuredW: ev.MeasuredW, TotalW: ev.PowerW, Breakdown: bd,
		})
	}
	return out, nil
}

// closeEnough compares a recomputed component sum against the recorded
// total: bit-identical in-process, so the only slack allowed is the last
// ulp-level rounding a JSON encode/decode of the summands can introduce.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// fromLiveRun tunes a session and converts its four-variant validation
// results — attribution straight from the model, no ledger needed.
func fromLiveRun(archName string, full bool, workers int, traceOut, ledgerOut string) (map[string][]row, error) {
	var arch *accelwattch.Arch
	switch archName {
	case "volta":
		arch = accelwattch.Volta()
	case "pascal":
		arch = accelwattch.Pascal()
	case "turing":
		arch = accelwattch.Turing()
	default:
		return nil, fmt.Errorf("unknown architecture %q", archName)
	}
	sc := accelwattch.Quick
	if full {
		sc = accelwattch.Full
	}
	run := cli.Start("awreport", arch.Name, traceOut, ledgerOut)
	fmt.Fprintf(os.Stderr, "awreport: tuning %s and validating all variants...\n", arch.Name)
	sess, err := accelwattch.NewSessionWithOptions(arch, sc, accelwattch.SessionOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	all, err := sess.ValidateAll()
	if err != nil {
		return nil, err
	}
	out := make(map[string][]row)
	for v, res := range all {
		for _, k := range res.Kernels {
			out[v.String()] = append(out[v.String()], row{
				Kernel: k.Name, MeasuredW: k.MeasuredW, TotalW: k.EstimatedW, Breakdown: k.Breakdown,
			})
		}
	}
	if err := run.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

func printTable(variant string, rows []row, perComponent bool) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Kernel < rows[j].Kernel })
	fmt.Printf("== %s: per-kernel power attribution (W) ==\n", variant)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)

	var cols []string
	if perComponent {
		for c := 0; c < core.NumComponents; c++ {
			cols = append(cols, core.Component(c).String())
		}
	} else {
		for g := eval.Group(0); g < eval.NumGroups; g++ {
			cols = append(cols, g.String())
		}
	}
	fmt.Fprint(w, "kernel\tmeas\test")
	for _, c := range cols {
		fmt.Fprint(w, "\t", c)
	}
	fmt.Fprintln(w, "\t")

	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f", r.Kernel, r.MeasuredW, r.TotalW)
		if perComponent {
			for c := 0; c < core.NumComponents; c++ {
				fmt.Fprintf(w, "\t%.2f", r.Breakdown.Watts[c])
			}
		} else {
			g := eval.GroupBreakdown(r.Breakdown)
			for i := eval.Group(0); i < eval.NumGroups; i++ {
				fmt.Fprintf(w, "\t%.2f", g.Watts[i])
			}
		}
		fmt.Fprintln(w, "\t")
	}
	w.Flush()
	fmt.Println()
}
