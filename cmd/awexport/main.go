// Command awexport is the observability endpoint of the pipeline: it runs
// the AccelWattch tuning flow (and optionally the validation suite) while
// serving the process-wide obs registry as a Prometheus-style exporter —
// /metrics in text exposition format, /healthz as a JSON liveness/readiness
// probe, /debug/pprof/* as the Go profiling surface — in the mould of the
// GPU power exporters (Kepler, DCGM) that motivated the metric naming
// scheme.
//
// Typical use:
//
//	awexport -addr :9767 -arch volta -faults chaos
//	curl localhost:9767/metrics | grep aw_tune
//	go tool pprof localhost:9767/debug/pprof/profile?seconds=10
//
// With -interval the pipeline re-runs on a fresh session forever, so the
// engine/tune/faults/eval series keep moving for a scraping Prometheus;
// without it the pipeline runs once and the final state stays up for
// scraping. -once skips the HTTP server entirely and dumps the exposition
// to stdout, which is what the golden CI check consumes. In serve mode,
// SIGINT/SIGTERM drains the HTTP server, writes the -metrics-out snapshot,
// and flushes the trace/ledger artifacts with run_end reason "sigterm"
// before exiting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"accelwattch"
	"accelwattch/internal/cli"
	"accelwattch/internal/obs"
)

// state is what /healthz reports about the pipeline feeding the metrics.
type state struct {
	ready    atomic.Bool
	runs     atomic.Int64
	lastErr  atomic.Value // string
	archName string
}

func newState(archName string) *state {
	st := &state{archName: archName}
	st.lastErr.Store("")
	return st
}

func (st *state) serveHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	resp := map[string]any{
		"status": "ok",
		"ready":  st.ready.Load(),
		"arch":   st.archName,
		"runs":   st.runs.Load(),
	}
	if e := st.lastErr.Load().(string); e != "" {
		resp["last_error"] = e
	}
	json.NewEncoder(w).Encode(resp)
}

func (st *state) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, "awexport: AccelWattch telemetry for %s\n"+
		"/metrics       Prometheus text exposition\n"+
		"/healthz       JSON health probe\n"+
		"/debug/pprof/  Go profiling endpoints\n", st.archName)
}

// shutdownFlush is the exporter's exit path, shared by -once and the signal
// handler: write the final metrics snapshot and flush the run artifacts
// (trace and ledger) with the given close reason. A scraped exporter killed
// by its supervisor leaves its last telemetry behind instead of losing
// everything since the previous scrape.
func shutdownFlush(reg *obs.Registry, run *cli.Run, metricsOut, reason string) error {
	var first error
	if metricsOut != "" {
		if err := reg.WriteJSONFile(metricsOut); err != nil {
			first = err
		} else {
			run.Log.Info("wrote metrics snapshot", "path", metricsOut)
		}
	}
	if err := run.CloseReason(reason); err != nil && first == nil {
		first = err
	}
	return first
}

// newMux assembles the exporter's HTTP surface: metrics, health, the pprof
// profiling endpoints, and the index. Factored out of main so tests can
// drive the exact mux the exporter serves.
func newMux(reg *obs.Registry, st *state) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", st.serveHealth)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", st.serveIndex)
	return mux
}

func main() {
	var (
		addr      = flag.String("addr", ":9767", "HTTP listen address")
		archName  = flag.String("arch", "volta", "architecture to tune (volta, pascal, turing)")
		full      = flag.Bool("full", false, "use the full-fidelity workload scale")
		validate  = flag.Bool("validate", true, "run the four-variant validation suite after tuning")
		faultName = flag.String("faults", "off", "inject power-meter faults ("+
			strings.Join(accelwattch.NamedFaultProfiles(), ", ")+")")
		faultSeed = flag.Int64("fault-seed", 1, "deterministic seed for the fault injector")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "execution-engine worker count")
		interval  = flag.Duration("interval", 0, "re-run the pipeline on a fresh session at this period (0 = run once)")
		once      = flag.Bool("once", false, "run the pipeline once, print /metrics output to stdout, and exit")
		out       = flag.String("metrics-out", "", "write the JSON telemetry snapshot to this file on exit (with -once, or on SIGTERM in serve mode)")
	)
	traceOut, ledgerOut := cli.Artifacts()
	flag.Parse()

	var arch *accelwattch.Arch
	switch *archName {
	case "volta":
		arch = accelwattch.Volta()
	case "pascal":
		arch = accelwattch.Pascal()
	case "turing":
		arch = accelwattch.Turing()
	default:
		fmt.Fprintf(os.Stderr, "awexport: unknown architecture %q\n", *archName)
		os.Exit(1)
	}
	sc := accelwattch.Quick
	if *full {
		sc = accelwattch.Full
	}
	prof, err := accelwattch.NamedFaultProfile(*faultName, *faultSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "awexport: %v\n", err)
		os.Exit(1)
	}
	run := cli.Start("awexport", arch.Name+" faults="+*faultName, *traceOut, *ledgerOut)
	logger := run.Log

	st := newState(arch.Name)
	reg := obs.Default()
	obs.RegisterRuntimeMetrics(reg)
	ready := reg.GaugeVec("aw_export_ready",
		"1 once the exporter's pipeline has completed at least one run.", "arch").With(arch.Name)
	runsDone := reg.CounterVec("aw_export_pipeline_runs_total",
		"Pipeline runs completed by the exporter, by outcome.", "outcome")

	runOnce := func() {
		sess, err := accelwattch.NewSessionWithOptions(arch, sc,
			accelwattch.SessionOptions{Faults: &prof, Workers: *workers})
		if err == nil && *validate {
			_, err = sess.ValidateAll()
		}
		if err != nil {
			st.lastErr.Store(err.Error())
			runsDone.With("error").Inc()
			logger.Error("pipeline run failed", "err", err)
			return
		}
		st.lastErr.Store("")
		st.ready.Store(true)
		st.runs.Add(1)
		ready.Set(1)
		runsDone.With("ok").Inc()
		logger.Info("pipeline run complete", "runs", st.runs.Load())
	}

	if *once {
		runOnce()
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			run.Fatal(err)
		}
		if e := st.lastErr.Load().(string); e != "" {
			run.Fatalf("pipeline failed: %s", e)
		}
		if err := shutdownFlush(reg, run, *out, "ok"); err != nil {
			logger.Error("writing artifacts", "err", err)
			os.Exit(1)
		}
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: newMux(reg, st)}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	go func() {
		for {
			start := time.Now()
			runOnce()
			if *interval <= 0 {
				return
			}
			if sleep := *interval - time.Since(start); sleep > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(sleep):
				}
			}
		}
	}()

	logger.Info("serving telemetry",
		"arch", arch.Name, "addr", *addr, "workers", *workers, "faults", *faultName)
	select {
	case <-ctx.Done():
		logger.Info("signal received; flushing telemetry")
	case err := <-errc:
		run.Fatalf("server exited: %v", err)
	}
	stopSignals()

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		logger.Error("http shutdown", "err", err)
	}
	if err := shutdownFlush(reg, run, *out, "sigterm"); err != nil {
		logger.Error("writing artifacts", "err", err)
		os.Exit(1)
	}
}
