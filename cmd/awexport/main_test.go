package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"accelwattch"
	"accelwattch/internal/cli"
	"accelwattch/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestHealthzSemantics pins the readiness protocol: not ready until a
// pipeline run completes, last_error surfaces failures and clears on the
// next success.
func TestHealthzSemantics(t *testing.T) {
	st := newState("volta")
	srv := httptest.NewServer(newMux(obs.NewRegistry(), st))
	defer srv.Close()

	decode := func(body string) map[string]any {
		var m map[string]any
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("healthz is not JSON: %v\n%s", err, body)
		}
		return m
	}

	code, body := get(t, srv.URL+"/healthz")
	m := decode(body)
	if code != http.StatusOK || m["ready"] != false || m["status"] != "ok" {
		t.Fatalf("fresh exporter healthz = %d %v, want 200 ready=false status=ok", code, m)
	}
	if _, has := m["last_error"]; has {
		t.Fatalf("fresh exporter reports last_error: %v", m)
	}

	st.lastErr.Store("pipeline exploded")
	_, body = get(t, srv.URL+"/healthz")
	if m = decode(body); m["last_error"] != "pipeline exploded" {
		t.Fatalf("failed run not surfaced: %v", m)
	}

	st.lastErr.Store("")
	st.ready.Store(true)
	st.runs.Add(1)
	_, body = get(t, srv.URL+"/healthz")
	m = decode(body)
	if m["ready"] != true || m["runs"] != float64(1) {
		t.Fatalf("recovered exporter healthz = %v, want ready=true runs=1", m)
	}
	if _, has := m["last_error"]; has {
		t.Fatalf("cleared error still reported: %v", m)
	}
}

// TestPprofRoutesWired asserts the profiling surface is mounted on the
// exporter mux — each endpoint answers 200 with its expected content.
func TestPprofRoutesWired(t *testing.T) {
	srv := httptest.NewServer(newMux(obs.NewRegistry(), newState("volta")))
	defer srv.Close()

	for path, want := range map[string]string{
		"/debug/pprof/":                  "Types of profiles available",
		"/debug/pprof/cmdline":           "",
		"/debug/pprof/goroutine?debug=1": "goroutine profile",
		"/debug/pprof/heap?debug=1":      "heap profile",
	} {
		code, body := get(t, srv.URL+path)
		if code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, code)
		}
		if want != "" && !strings.Contains(body, want) {
			t.Errorf("GET %s missing %q:\n%.200s", path, want, body)
		}
	}

	// The index handler still 404s unknown paths.
	if code, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", code)
	}
}

// TestConcurrentScrapesDuringTune scrapes /metrics from several clients
// while a real (tiny-scale) tuning pipeline mutates the registry — the
// exporter's steady-state workload. Run with -race this doubles as the
// scrape-versus-pipeline data-race check.
func TestConcurrentScrapesDuringTune(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a tune")
	}
	reg := obs.Default()
	obs.RegisterRuntimeMetrics(reg)
	srv := httptest.NewServer(newMux(reg, newState("volta")))
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		sc := accelwattch.Scale{Iters: 2, Unroll: 1, WarpsPerCTA: 2}
		_, err := accelwattch.NewSessionWithOptions(accelwattch.Volta(), sc,
			accelwattch.SessionOptions{Workers: 4})
		done <- err
	}()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("scrape %d: status %d, err %v", i, resp.StatusCode, err)
					return
				}
				out := string(b)
				if !strings.Contains(out, "# TYPE") || !strings.Contains(out, "aw_go_goroutines") {
					t.Errorf("scrape %d: malformed exposition:\n%.200s", i, out)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestShutdownFlush is the SIGTERM-path regression test: the shared exit
// helper must settle the ledger to its JSONL artifact with run_end reason
// "sigterm" and write the final metrics snapshot, so a supervisor-killed
// exporter loses no telemetry.
func TestShutdownFlush(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "ledger.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")

	run := cli.Start("awexport-test", "volta", "", ledgerPath)
	reg := obs.Default()
	reg.GaugeVec("aw_export_ready",
		"1 once the exporter's pipeline has completed at least one run.", "arch").With("volta").Set(1)
	if led := obs.ActiveLedger(); led != nil {
		led.Emit(obs.Event{Kind: obs.KindFit, Stage: "test", Detail: "pre-sigterm"})
	} else {
		t.Fatal("cli.Start did not install a ledger")
	}

	if err := shutdownFlush(reg, run, metricsPath, "sigterm"); err != nil {
		t.Fatal(err)
	}

	evs, err := obs.ReadLedgerFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	var sawNote bool
	var end *obs.Event
	for i, ev := range evs {
		switch {
		case ev.Kind == obs.KindFit && ev.Detail == "pre-sigterm":
			sawNote = true
		case ev.Kind == obs.KindRunEnd:
			end = &evs[i]
		}
	}
	if !sawNote {
		t.Fatal("pre-shutdown ledger event lost in flush")
	}
	if end == nil || end.Reason != "sigterm" {
		t.Fatalf("run_end missing or wrong reason: %+v", end)
	}

	snap, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(snap), "aw_export_ready") {
		t.Fatal("metrics snapshot missing exporter series")
	}
}
