// Command awvalidate reproduces the paper's evaluation: the Volta
// validation of Figures 7-9, the Pascal and Turing case studies of Figures
// 10-12, the DeepBench case study of Figure 13, and the GPUWattch baseline
// comparison of Section 7.3.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"

	"accelwattch"
	"accelwattch/internal/cli"
	"accelwattch/internal/eval"
	"accelwattch/internal/obs"
	"accelwattch/internal/tune"
	"accelwattch/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("awvalidate: ")
	var (
		full       = flag.Bool("full", false, "use the full-fidelity workload scale")
		doCases    = flag.Bool("casestudies", true, "run the Pascal/Turing case studies")
		doDeep     = flag.Bool("deepbench", true, "run the DeepBench case study")
		doLegacy   = flag.Bool("gpuwattch", true, "run the GPUWattch baseline comparison")
		perKernel  = flag.Bool("kernels", false, "print per-kernel rows (Figure 9)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "execution-engine worker count (results are identical at any setting)")
		strict     = flag.Bool("strict", false, "exit non-zero on partial failure (quarantined workloads or kernels without a defined error)")
		metricsOut = flag.String("metrics-out", "", "write the JSON telemetry snapshot (metrics + stage spans) to this file")
		byCategory = flag.Bool("by-category", false, "validate the AI-inference pack and report MAPE per category (gemm, attention, tensorcore, memory, parked)")
		catBounds  = flag.String("category-bounds", "", "gate per-category MAPE against a bound file (one \"category percent\" per line); implies -by-category")
	)
	shards := cli.ShardFlags()
	traceOut, ledgerOut := cli.Artifacts()
	flag.Parse()

	sc := accelwattch.Quick
	if *full {
		sc = accelwattch.Full
	}
	run := cli.Start("awvalidate", "volta", *traceOut, *ledgerOut)
	fmt.Println("tuning AccelWattch on the Volta testbench...")
	opts := accelwattch.SessionOptions{Workers: *workers}
	if shards.Enabled() {
		d, err := shards.Dispatcher(nil)
		if err != nil {
			run.Fatal(err)
		}
		defer d.Close()
		opts.Shards = d
		fmt.Printf("offloading measurements to worker shards %s (net faults %q)\n",
			shards.Addrs, shards.NetProfile)
	}
	sess, err := accelwattch.NewSessionWithOptions(accelwattch.Volta(), sc, opts)
	if err != nil {
		run.Fatal(err)
	}

	// Figure 7: validation across variants.
	fmt.Println("\n== Figure 7: Volta validation ==")
	all, err := sess.ValidateAll()
	if err != nil {
		run.Fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tMAPE\t95% CI\tmax err\tpearson r\tkernels")
	for _, v := range tune.Variants() {
		r := all[v]
		fmt.Fprintf(w, "%v\t%.2f%%\t±%.2f\t%.1f%%\t%.3f\t%d\n",
			v, r.MAPE, r.CI95, r.MaxAPE, r.Pearson, len(r.Kernels))
	}
	w.Flush()
	fmt.Println("(paper: SASS 9.2%, PTX 13.7%, HW 7.5%, HYBRID 8.2%)")

	// Figure 8: normalised breakdown.
	fmt.Println("\n== Figure 8: normalised power breakdown (SASS SIM) ==")
	avg := eval.AverageBreakdown(all[accelwattch.SASSSIM].Kernels)
	for g := eval.Group(0); g < eval.NumGroups; g++ {
		if s := avg.Share(g); s > 0.001 {
			fmt.Printf("  %-14v %5.1f%%\n", g, 100*s)
		}
	}

	if *perKernel {
		fmt.Println("\n== Figure 9: per-kernel power (SASS SIM) ==")
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "kernel\tmeasured (W)\testimated (W)\terror")
		for _, k := range all[accelwattch.SASSSIM].Kernels {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%+.1f%%\n", k.Name, k.MeasuredW, k.EstimatedW, k.RelErrPct())
		}
		w.Flush()
	}

	if *byCategory || *catBounds != "" {
		fmt.Println("\n== AI-inference pack: per-category validation ==")
		byCat, err := sess.ValidateAllByCategory()
		if err != nil {
			run.Fatal(err)
		}
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprint(w, "category\tkernels")
		for _, v := range tune.Variants() {
			fmt.Fprintf(w, "\t%v", v)
		}
		fmt.Fprintln(w)
		for _, cat := range workloads.Categories() {
			row := byCat[accelwattch.SASSSIM].Category(cat)
			if row == nil {
				continue
			}
			fmt.Fprintf(w, "%s\t%d", cat, row.Kernels)
			for _, v := range tune.Variants() {
				if cr := byCat[v].Category(cat); cr != nil {
					fmt.Fprintf(w, "\t%.2f%%", cr.MAPE)
				} else {
					fmt.Fprint(w, "\t-")
				}
			}
			fmt.Fprintln(w)
		}
		w.Flush()
		for _, v := range tune.Variants() {
			if err := eval.CheckParkedInvariant(byCat[v].Kernels); err != nil {
				run.Fatalf("parked-power invariant (%v): %v", v, err)
			}
		}
		fmt.Println("parked-power invariant: estimate bit-equal to the idle domain under every variant")

		if *catBounds != "" {
			bounds, err := cli.LoadCategoryBounds(*catBounds)
			if err != nil {
				run.Fatal(err)
			}
			var broken []string
			for _, v := range tune.Variants() {
				seen := map[string]bool{}
				for _, cr := range byCat[v].Categories {
					seen[string(cr.Category)] = true
					bound, gated := bounds[string(cr.Category)]
					if !gated {
						continue
					}
					if cr.Kernels == 0 {
						broken = append(broken, fmt.Sprintf("%v/%s: zero kernels validated", v, cr.Category))
					}
					if cr.MAPE > bound {
						broken = append(broken, fmt.Sprintf("%v/%s: MAPE %.2f%% exceeds the %.2f%% bound", v, cr.Category, cr.MAPE, bound))
					}
				}
				// A bounded category that vanished from the suite is a
				// silent pass the gate exists to prevent.
				for cat := range bounds {
					if !seen[cat] {
						broken = append(broken, fmt.Sprintf("%v/%s: category absent from the validation run", v, cat))
					}
				}
			}
			sort.Strings(broken)
			if len(broken) > 0 {
				fmt.Println("\n== category gate: bounds exceeded ==")
				for _, b := range broken {
					fmt.Println("  " + b)
				}
				run.Fatalf("category gate failed (%d bound(s) exceeded, bounds from %s)", len(broken), *catBounds)
			}
			fmt.Printf("category gate: every category within the bounds of %s\n", *catBounds)
		}
	}

	if *doCases {
		fmt.Println("\n== Figures 10-12: Pascal & Turing case studies ==")
		voltaSASS := all[accelwattch.SASSSIM]
		pascal, err := sess.CaseStudy(accelwattch.Pascal())
		if err != nil {
			run.Fatal(err)
		}
		turing, err := sess.CaseStudy(accelwattch.Turing())
		if err != nil {
			run.Fatal(err)
		}
		fmt.Printf("Pascal TITAN X : SASS MAPE %.2f%%, PTX MAPE %.2f%% (paper: 11%%, 10.8%%)\n",
			pascal.SASS.MAPE, pascal.PTX.MAPE)
		fmt.Printf("Turing RTX2060S: SASS MAPE %.2f%%, PTX MAPE %.2f%% (paper: 13%%, 14%%)\n",
			turing.SASS.MAPE, turing.PTX.MAPE)
		for _, pair := range []struct {
			name string
			a, b *eval.ValidationResult
		}{
			{"Pascal vs Volta", voltaSASS, pascal.SASS},
			{"Turing vs Volta", voltaSASS, turing.SASS},
			{"Turing vs Pascal", pascal.SASS, turing.SASS},
		} {
			rp := eval.RelativePower(pair.name, pair.a, pair.b)
			fmt.Printf("%-17s avg relative power: modeled %+.1f%%, measured %+.1f%% (err %.1f%%; same direction %.0f%%)\n",
				rp.PairName, rp.AvgModeledPct, rp.AvgMeasuredPct, rp.AvgErrPct, 100*rp.SameDirectionFrac)
		}
	}

	if *doDeep {
		fmt.Println("\n== Figure 13: DeepBench case study ==")
		results, mape, err := sess.DeepBench()
		if err != nil {
			run.Fatal(err)
		}
		for _, r := range results {
			fmt.Printf("  %-22s measured %.1f W, estimated %.1f W\n", r.Name, r.MeasuredW, r.EstimatedW)
		}
		fmt.Printf("DeepBench MAPE: %.2f%% (paper: 12.79%%)\n", mape)
	}

	if *doLegacy {
		fmt.Println("\n== Section 7.3: GPUWattch baseline on Volta ==")
		gw, err := sess.CompareGPUWattch()
		if err != nil {
			run.Fatal(err)
		}
		fmt.Printf("GPUWattch MAPE: SASS %.0f%%, PTX %.0f%% (paper: 219%%, 225%%)\n", gw.SASSMAPE, gw.PTXMAPE)
		fmt.Printf("average estimate %.0f W, max %.0f W (paper: 530 W, 926 W)\n", gw.AvgEstimatedW, gw.MaxEstimatedW)
		fmt.Printf("const+static lumped at %.2f W; INT MUL share %.1f%%; DRAM share %.1f%%\n",
			gw.ConstPlusStaticW, 100*gw.IntMulShare, 100*gw.DRAMShare)
	}

	if *metricsOut != "" {
		if err := obs.Default().WriteJSONFile(*metricsOut); err != nil {
			run.Fatal(err)
		}
		fmt.Printf("\nwrote the telemetry snapshot to %s\n", *metricsOut)
	}
	if err := run.Close(); err != nil {
		log.Fatal(err)
	}

	if *strict {
		var problems []string
		for _, q := range sess.Quarantined() {
			problems = append(problems, "quarantined: "+q)
		}
		for _, v := range tune.Variants() {
			for _, k := range all[v].Kernels {
				if math.IsNaN(k.RelErrPct()) {
					problems = append(problems, fmt.Sprintf("%v/%s: no defined error (measured %.1f W)", v, k.Name, k.MeasuredW))
				}
			}
		}
		if len(problems) > 0 {
			fmt.Println("\n== strict mode: partial failures ==")
			for _, p := range problems {
				fmt.Println("  " + p)
			}
			os.Exit(1)
		}
	}
}
