// Command awtrace is the NVBit stand-in's workbench: it traces a kernel
// (functional SIMT execution), writes/reads the binary trace format, and
// prints the summary statistics timing models consume — instruction counts
// per unit, average active lanes, coalescing behaviour.
//
//	go run ./cmd/awtrace -example            # trace the demo kernel
//	go run ./cmd/awtrace -f k.asm -o k.trc   # save a trace file
//	go run ./cmd/awtrace -i k.trc            # inspect a saved trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"accelwattch"
	"accelwattch/internal/emu"
	"accelwattch/internal/isa"
	"accelwattch/internal/trace"
)

const exampleKernel = `.kernel trace_demo
.grid 4
.block 64

    S2R R1, gtid
    SHL R2, R1, 2
    IADD R3, R2, 4194304
    MOVI R4, 6
loop:
    LDG R5, [R3]
    IMAD R6, R5, R5, R6
    ADD.S64 R3, R3, 4096
    IADD R4, R4, -1
    ISETP.gt P0, R4, 0
@P0 BRA loop
    STG [R2], R6
    EXIT
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("awtrace: ")
	var (
		file    = flag.String("f", "", "kernel assembly file to trace")
		example = flag.Bool("example", false, "trace the built-in example kernel")
		inPath  = flag.String("i", "", "inspect a saved trace file instead of tracing")
		outPath = flag.String("o", "", "write the trace to this file")
		level   = flag.String("level", "sass", "ISA level to trace: sass or ptx")
		dump    = flag.Int("dump", 0, "print the first N records of warp 0")
	)
	flag.Parse()

	var kt *trace.KernelTrace
	switch {
	case *inPath != "":
		data, err := os.ReadFile(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		var derr error
		kt, derr = trace.Decode(data)
		if derr != nil {
			log.Fatal(derr)
		}
	default:
		src := exampleKernel
		if *file != "" {
			data, err := os.ReadFile(*file)
			if err != nil {
				log.Fatal(err)
			}
			src = string(data)
		} else if !*example {
			log.Fatal("provide -f kernel.asm, -example, or -i trace file")
		}
		k, err := accelwattch.Assemble(src)
		if err != nil {
			log.Fatal(err)
		}
		if *level == "sass" {
			if k, err = isa.ForLevel(k, isa.SASS); err != nil {
				log.Fatal(err)
			}
		}
		kt, err = emu.Run(k, emu.NewMemory())
		if err != nil {
			log.Fatal(err)
		}
	}

	s := trace.Summarize(kt)
	fmt.Printf("kernel %s (%v): %d warps, %d warp-instructions, %d thread-instructions\n",
		kt.Kernel.Name, kt.Kernel.Level, s.WarpCount, s.DynInstrs, s.ThreadInstrs)
	fmt.Printf("average active lanes: %.2f; memory accesses: %d; global 128B lines: %d\n",
		s.AvgLanes, s.MemAccesses, s.GlobalLines)

	// Per-opcode census, descending.
	type row struct {
		op isa.Op
		n  int64
	}
	var rows []row
	for op, n := range s.OpCounts {
		rows = append(rows, row{op, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "opcode\tcount\tunit")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%d\t%v\n", r.op, r.n, r.op.Info().Unit)
	}
	w.Flush()

	if *dump > 0 && len(kt.Warps) > 0 {
		fmt.Printf("\nfirst %d records of warp (CTA %d, warp %d):\n", *dump, kt.Warps[0].CTA, kt.Warps[0].Warp)
		for i, r := range kt.Warps[0].Recs {
			if i >= *dump {
				break
			}
			fmt.Printf("  pc=%-3d %-10v mask=%08x", r.PC, r.Op, r.Mask)
			if len(r.Addrs) > 0 {
				fmt.Printf(" addr[0]=%#x x%d", r.Addrs[0], len(r.Addrs))
			}
			fmt.Println()
		}
	}

	if *outPath != "" {
		data, err := trace.Encode(kt)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d bytes to %s\n", len(data), *outPath)
	}
}
