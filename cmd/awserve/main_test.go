package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accelwattch/internal/config"
	"accelwattch/internal/core"
	"accelwattch/internal/tune"
)

func testModelFile(t *testing.T, tunedVariant string) string {
	t.Helper()
	m := &core.Model{
		Arch:         config.Volta(),
		BaseEnergyPJ: core.InitialEnergiesPJ(),
		ConstW:       32.5,
		IdleSMW:      0.1,
		RefSMs:       80,
		TunedVariant: tunedVariant,
	}
	for i := range m.Scale {
		m.Scale[i] = 0.1
	}
	for i := range m.Div {
		m.Div[i] = core.DivModel{FirstLaneW: 30, AddLaneW: 0.7}
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatalf("saving model: %v", err)
	}
	return path
}

func TestBuildSetFromFile(t *testing.T) {
	path := testModelFile(t, "")
	set, err := buildSet("", path, "volta", false, 1, nil, nil)
	if err != nil {
		t.Fatalf("buildSet: %v", err)
	}
	e := set.Get("")
	if e == nil {
		t.Fatal("no default entry")
	}
	if !strings.HasPrefix(e.Source, "file:") {
		t.Fatalf("source = %q, want file: prefix", e.Source)
	}
	if got := len(e.Variants()); got != int(tune.NumVariants) {
		t.Fatalf("got %d variants, want %d", got, int(tune.NumVariants))
	}
	for _, v := range tune.Variants() {
		m := e.Model(v)
		if m == nil {
			t.Fatalf("variant %v missing", v)
		}
		if m.ConstW != 32.5 || m.RefSMs != 80 {
			t.Fatalf("variant %v model does not match the saved one", v)
		}
	}
}

// A variant-tagged saved model keeps legacy -model behaviour (all variants
// served) but must warn loudly.
func TestBuildSetTaggedModelWarns(t *testing.T) {
	path := testModelFile(t, tune.SASSSIM.String())
	var warned []string
	set, err := buildSet("", path, "volta", false, 1, nil,
		func(format string, args ...any) { warned = append(warned, fmt.Sprintf(format, args...)) })
	if err != nil {
		t.Fatalf("buildSet: %v", err)
	}
	if got := len(set.Get("").Variants()); got != int(tune.NumVariants) {
		t.Fatalf("tagged model served %d variants under -model, want all %d", got, int(tune.NumVariants))
	}
	if len(warned) == 0 {
		t.Fatal("no warning for serving a variant-tagged model under every variant")
	}
	if !strings.Contains(warned[0], tune.SASSSIM.String()) {
		t.Fatalf("warning does not name the recorded variant: %q", warned[0])
	}
}

// A manifest with file + derived entries builds the full zoo without any
// tuning (TuneFunc never invoked for these sources).
func TestBuildSetFromManifest(t *testing.T) {
	dir := t.TempDir()
	model := testModelFile(t, "")
	manifest := filepath.Join(dir, "manifest.json")
	body := fmt.Sprintf(`{
  "default": "volta-saved",
  "models": [
    {"name": "volta-saved",    "file": %q},
    {"name": "pascal-derived", "derive": {"from": "volta-saved", "arch": "pascal"}},
    {"name": "turing-derived", "derive": {"from": "volta-saved", "arch": "turing"}}
  ]
}`, model)
	if err := os.WriteFile(manifest, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := buildSet(manifest, "", "volta", false, 1, nil, nil)
	if err != nil {
		t.Fatalf("buildSet: %v", err)
	}
	if len(set.Entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(set.Entries))
	}
	if set.Default != "volta-saved" {
		t.Fatalf("default = %q", set.Default)
	}
	pd := set.Get("pascal-derived")
	if pd == nil || pd.Arch != "pascal-titanx" || pd.Derived == nil {
		t.Fatalf("pascal-derived entry malformed: %+v", pd)
	}
	td := set.Get("turing-derived")
	if td == nil || td.Derived == nil || td.Derived.ConstMult != 1.7 {
		t.Fatalf("turing-derived should default const_mult 1.7: %+v", td.Derived)
	}
}

func TestBuildSetErrors(t *testing.T) {
	if _, err := buildSet("", filepath.Join(t.TempDir(), "nope.json"), "volta", false, 1, nil, nil); err == nil {
		t.Fatal("buildSet accepted a missing model file")
	}
	if _, err := buildSet("", "", "ampere", false, 1, nil, nil); err == nil {
		t.Fatal("buildSet accepted an unknown architecture")
	}
	if _, err := buildSet(filepath.Join(t.TempDir(), "nope.json"), "", "volta", false, 1, nil, nil); err == nil {
		t.Fatal("buildSet accepted a missing manifest")
	}
}
