package main

import (
	"path/filepath"
	"strings"
	"testing"

	"accelwattch/internal/config"
	"accelwattch/internal/core"
	"accelwattch/internal/tune"
)

func TestResolveArch(t *testing.T) {
	for _, name := range []string{"volta", "pascal", "turing"} {
		arch, err := resolveArch(name)
		if err != nil || arch == nil {
			t.Fatalf("resolveArch(%q): %v", name, err)
		}
	}
	if _, err := resolveArch("ampere"); err == nil {
		t.Fatal("resolveArch accepted an unknown architecture")
	}
}

func TestBuildModelsFromFile(t *testing.T) {
	m := &core.Model{
		Arch:         config.Volta(),
		BaseEnergyPJ: core.InitialEnergiesPJ(),
		ConstW:       32.5,
		IdleSMW:      0.1,
		RefSMs:       80,
	}
	for i := range m.Scale {
		m.Scale[i] = 0.1
	}
	for i := range m.Div {
		m.Div[i] = core.DivModel{FirstLaneW: 30, AddLaneW: 0.7}
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatalf("saving model: %v", err)
	}

	models, source, err := buildModels(path, "volta", false, 1, nil)
	if err != nil {
		t.Fatalf("buildModels: %v", err)
	}
	if !strings.HasPrefix(source, "file:") {
		t.Fatalf("source = %q, want file: prefix", source)
	}
	if len(models) != int(tune.NumVariants) {
		t.Fatalf("got %d variants, want %d", len(models), int(tune.NumVariants))
	}
	for _, v := range tune.Variants() {
		got := models[v]
		if got == nil {
			t.Fatalf("variant %v missing", v)
		}
		if got.ConstW != m.ConstW || got.RefSMs != m.RefSMs {
			t.Fatalf("variant %v model does not match the saved one", v)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("loaded model invalid: %v", err)
		}
	}
}

func TestBuildModelsErrors(t *testing.T) {
	if _, _, err := buildModels(filepath.Join(t.TempDir(), "nope.json"), "volta", false, 1, nil); err == nil {
		t.Fatal("buildModels accepted a missing model file")
	}
	if _, _, err := buildModels("", "ampere", false, 1, nil); err == nil {
		t.Fatal("buildModels accepted an unknown architecture")
	}
}
