// Command awserve is the long-running power-estimation gateway: it builds a
// model zoo once at startup — tuned, loaded from files, or derived across
// architectures — then answers estimation requests over HTTP until asked to
// drain.
//
//	awserve -addr :8080                 # tune Volta at Quick scale, serve
//	awserve -model volta.json           # serve a saved model for all variants
//	awserve -models manifest.json       # serve a multi-architecture model zoo
//	curl -d '{"variant":"SASS_SIM","cycles":1e6,...}' localhost:8080/estimate
//	curl -d '{"arch":"pascal","variant":"SASS_SIM",...}' localhost:8080/estimate
//
// Under -models, requests route by the "model" (entry name) or "arch"
// (family alias) body field, and the admin endpoints (GET /models, PUT
// /models/{name}, DELETE /models/{name}) hot-add, replace, or retire
// entries under load without draining.
//
// SIGINT/SIGTERM triggers a graceful drain: readiness flips to 503, new
// estimation work is refused, accepted work is answered, in-flight HTTP
// responses complete, and the ledger/trace artifacts are flushed with
// run_end reason "sigterm".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"accelwattch/internal/cli"
	"accelwattch/internal/core"
	"accelwattch/internal/serve"
	"accelwattch/internal/tune"
	"accelwattch/internal/zoo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("awserve: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		archName     = flag.String("arch", "volta", "architecture to tune at startup (volta, pascal, turing)")
		full         = flag.Bool("full", false, "tune at the full-fidelity workload scale")
		modelPath    = flag.String("model", "", "serve a saved model file (accelwattch-model-v1 JSON) for all variants instead of tuning")
		manifestPath = flag.String("models", "", "serve a multi-architecture model zoo from a manifest file (overrides -model/-arch)")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "batch worker count (responses are identical at any setting)")
		queue        = flag.Int("queue", serve.DefaultQueueSize, "estimation queue bound; a full queue answers 429")
		batch        = flag.Int("batch", serve.DefaultMaxBatch, "max jobs coalesced per engine dispatch")
		batchWindow  = flag.Duration("batch-window", 0, "how long the batcher may wait to fill a batch (0 = greedy coalescing)")
		cacheSize    = flag.Int("cache", 4096, "response LRU capacity in entries (0 disables caching)")
		deadline     = flag.Duration("deadline", serve.DefaultDeadline, "per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for accepted work and in-flight responses")
		ledgerCap    = flag.Int("ledger-cap", 65536, "attribution-ledger retention in events (0 = unbounded; unsafe for long runs)")
	)
	shards := cli.ShardFlags()
	traceOut, ledgerOut := cli.Artifacts()
	flag.Parse()

	run := cli.StartCapped("awserve", *archName, *traceOut, *ledgerOut, *ledgerCap)
	cfg := serve.Config{
		Workers:     *workers,
		QueueSize:   *queue,
		MaxBatch:    *batch,
		BatchWindow: *batchWindow,
		CacheSize:   *cacheSize,
		Deadline:    *deadline,
	}
	// remote stays a nil interface when shards are off — a typed-nil
	// dispatcher would defeat the opts.Shards != nil gate downstream.
	var remote tune.RemoteCaller
	if shards.Enabled() {
		d, err := shards.Dispatcher(nil)
		if err != nil {
			run.Fatal(err)
		}
		defer d.Close()
		remote = d
		cfg.Tasks = d
		run.Log.Info("offloading to worker shards", "addrs", shards.Addrs, "net_faults", shards.NetProfile)
	}
	set, err := buildSet(*manifestPath, *modelPath, *archName, *full, *workers, remote,
		func(format string, args ...any) { run.Log.Warn(fmt.Sprintf(format, args...)) })
	if err != nil {
		run.Fatal(err)
	}
	for _, e := range set.Entries {
		run.Log.Info("model ready", "name", e.Name, "arch", e.Arch, "source", e.Source,
			"variants", len(e.Variants()), "default", e.Name == set.Default)
	}

	cfg.Zoo = set
	srv, err := serve.New(cfg)
	if err != nil {
		run.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Mux()}
	errc := make(chan error, 1)
	go func() {
		run.Log.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		run.Log.Info("signal received; draining")
	case err := <-errc:
		run.Fatal(err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		run.Log.Error("drain incomplete", "err", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		run.Log.Error("http shutdown", "err", err)
	}
	srv.Close()
	if err := run.CloseReason("sigterm"); err != nil {
		run.Log.Error("writing artifacts", "err", err)
		os.Exit(1)
	}
}

// buildSet produces the model zoo the gateway serves. Three shapes:
//
//   - -models manifest.json: the full multi-architecture zoo — tuned,
//     file-loaded, and derived entries, with routing and admin enabled
//     across all of them;
//   - -model file.json: the legacy single-file mode, one saved model
//     answering for every variant. A model that records the variant it was
//     tuned under still serves all variants here (flag compatibility), but
//     the mismatch is logged loudly at startup and counted per estimate in
//     aw_serve_variant_mismatch_total;
//   - neither: tune -arch at startup, exactly as before.
func buildSet(manifestPath, modelPath, archName string, full bool, workers int,
	shards tune.RemoteCaller, warn func(format string, args ...any)) (*zoo.Set, error) {
	if warn == nil {
		warn = func(string, ...any) {}
	}
	if manifestPath != "" {
		return cli.BuildModelSet(manifestPath, workers, shards, warn)
	}
	if modelPath != "" {
		m, err := core.LoadModel(modelPath)
		if err != nil {
			return nil, err
		}
		if m.TunedVariant != "" {
			warn("model %s records tuned variant %s but -model serves it for every variant — estimates under other variants are unvalidated (use a -models manifest to restrict)",
				modelPath, m.TunedVariant)
		}
		e, err := zoo.Uniform("saved", m, "file:"+modelPath)
		if err != nil {
			return nil, err
		}
		return &zoo.Set{Default: e.Name, Entries: []*zoo.Entry{e}}, nil
	}
	models, source, err := cli.TuneModels(workers, shards)(archName, full)
	if err != nil {
		return nil, err
	}
	e, err := zoo.PerVariant(archName+"-tuned", models, source)
	if err != nil {
		return nil, err
	}
	return &zoo.Set{Default: e.Name, Entries: []*zoo.Entry{e}}, nil
}
