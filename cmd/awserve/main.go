// Command awserve is the long-running power-estimation service: it tunes
// (or loads) a model once at startup, then answers estimation requests over
// HTTP until asked to drain.
//
//	awserve -addr :8080                 # tune Volta at Quick scale, serve
//	awserve -model volta.json           # serve a saved model for all variants
//	curl -d '{"variant":"SASS_SIM","cycles":1e6,...}' localhost:8080/estimate
//
// SIGINT/SIGTERM triggers a graceful drain: readiness flips to 503, new
// estimation work is refused, accepted work is answered, in-flight HTTP
// responses complete, and the ledger/trace artifacts are flushed with
// run_end reason "sigterm".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"accelwattch"
	"accelwattch/internal/cli"
	"accelwattch/internal/core"
	"accelwattch/internal/serve"
	"accelwattch/internal/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("awserve: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		archName     = flag.String("arch", "volta", "architecture to tune at startup (volta, pascal, turing)")
		full         = flag.Bool("full", false, "tune at the full-fidelity workload scale")
		modelPath    = flag.String("model", "", "serve a saved model file (accelwattch-model-v1 JSON) for all variants instead of tuning")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "batch worker count (responses are identical at any setting)")
		queue        = flag.Int("queue", serve.DefaultQueueSize, "estimation queue bound; a full queue answers 429")
		batch        = flag.Int("batch", serve.DefaultMaxBatch, "max jobs coalesced per engine dispatch")
		batchWindow  = flag.Duration("batch-window", 0, "how long the batcher may wait to fill a batch (0 = greedy coalescing)")
		cacheSize    = flag.Int("cache", 4096, "response LRU capacity in entries (0 disables caching)")
		deadline     = flag.Duration("deadline", serve.DefaultDeadline, "per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for accepted work and in-flight responses")
		ledgerCap    = flag.Int("ledger-cap", 65536, "attribution-ledger retention in events (0 = unbounded; unsafe for long runs)")
	)
	shards := cli.ShardFlags()
	traceOut, ledgerOut := cli.Artifacts()
	flag.Parse()

	run := cli.StartCapped("awserve", *archName, *traceOut, *ledgerOut, *ledgerCap)
	cfg := serve.Config{
		Workers:     *workers,
		QueueSize:   *queue,
		MaxBatch:    *batch,
		BatchWindow: *batchWindow,
		CacheSize:   *cacheSize,
		Deadline:    *deadline,
	}
	// remote stays a nil interface when shards are off — a typed-nil
	// dispatcher would defeat the opts.Shards != nil gate downstream.
	var remote tune.RemoteCaller
	if shards.Enabled() {
		d, err := shards.Dispatcher(nil)
		if err != nil {
			run.Fatal(err)
		}
		defer d.Close()
		remote = d
		cfg.Tasks = d
		run.Log.Info("offloading to worker shards", "addrs", shards.Addrs, "net_faults", shards.NetProfile)
	}
	models, source, err := buildModels(*modelPath, *archName, *full, *workers, remote)
	if err != nil {
		run.Fatal(err)
	}
	run.Log.Info("models ready", "source", source)

	cfg.Models = models
	srv, err := serve.New(cfg)
	if err != nil {
		run.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Mux()}
	errc := make(chan error, 1)
	go func() {
		run.Log.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		run.Log.Info("signal received; draining")
	case err := <-errc:
		run.Fatal(err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		run.Log.Error("drain incomplete", "err", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		run.Log.Error("http shutdown", "err", err)
	}
	srv.Close()
	if err := run.CloseReason("sigterm"); err != nil {
		run.Log.Error("writing artifacts", "err", err)
		os.Exit(1)
	}
}

// resolveArch maps a -arch flag value onto a stock architecture.
func resolveArch(name string) (*accelwattch.Arch, error) {
	switch name {
	case "volta":
		return accelwattch.Volta(), nil
	case "pascal":
		return accelwattch.Pascal(), nil
	case "turing":
		return accelwattch.Turing(), nil
	default:
		return nil, fmt.Errorf("unknown architecture %q (want volta, pascal, or turing)", name)
	}
}

// buildModels produces the variant->model table the service serves: either
// one saved model file answering for every variant, or a freshly tuned
// session's per-variant models. The returned string describes the source
// for the startup log.
func buildModels(modelPath, archName string, full bool, workers int, shards tune.RemoteCaller) (map[tune.Variant]*core.Model, string, error) {
	if modelPath != "" {
		m, err := core.LoadModel(modelPath)
		if err != nil {
			return nil, "", err
		}
		models := make(map[tune.Variant]*core.Model, tune.NumVariants)
		for _, v := range tune.Variants() {
			models[v] = m
		}
		return models, "file:" + modelPath, nil
	}
	arch, err := resolveArch(archName)
	if err != nil {
		return nil, "", err
	}
	sc := accelwattch.Quick
	scName := "quick"
	if full {
		sc = accelwattch.Full
		scName = "full"
	}
	sess, err := accelwattch.NewSessionWithOptions(arch, sc,
		accelwattch.SessionOptions{Workers: workers, Shards: shards})
	if err != nil {
		return nil, "", err
	}
	models := make(map[tune.Variant]*core.Model, tune.NumVariants)
	for _, v := range tune.Variants() {
		models[v] = sess.Model(v)
	}
	return models, "tuned:" + archName + "/" + scName, nil
}
