package main

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"accelwattch/internal/cli"
	"accelwattch/internal/obs"
)

func testOptions() options {
	return options{
		archName: "volta", tenants: 12, workers: 3, seed: 42,
		tick: time.Millisecond, window: 0, maxSeries: 64,
		faultName: "off", faultSeed: 1,
	}
}

// The SIGTERM path settles every tenant's partial window into the ledger,
// writes the metrics snapshot, and closes the run with reason "sigterm" —
// the shutdown-flush regression test. Without the flush, a daemon killed
// mid-window would lose every joule since the last window event.
func TestShutdownFlush(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "ledger.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")

	run := cli.StartCapped("awmeterd-test", "volta", "", ledgerPath, 0)
	reg := obs.Default()
	c, err := buildCollector(testOptions(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(37) // window=0: nothing settled yet, all 37 ticks are in flight

	if err := shutdownFlush(c, reg, run, metricsPath, "sigterm"); err != nil {
		t.Fatal(err)
	}

	evs, err := obs.ReadLedgerFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	var nrg int
	var end *obs.Event
	for i, ev := range evs {
		switch ev.Kind {
		case obs.KindEnergy:
			nrg++
			if ev.Ticks != 37 {
				t.Fatalf("flush window covers %d ticks, want 37", ev.Ticks)
			}
			if math.Float64bits(ev.JoulesTotal) != math.Float64bits(ev.JoulesActive+ev.JoulesIdle) {
				t.Fatalf("event %d: joules_total not bit-exactly active+idle", i)
			}
		case obs.KindRunEnd:
			end = &evs[i]
		}
	}
	if nrg != 12 {
		t.Fatalf("flushed %d energy events, want one per tenant (12)", nrg)
	}
	if end == nil || end.Reason != "sigterm" {
		t.Fatalf("run_end missing or wrong reason: %+v", end)
	}

	snap, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aw_tenant_joules_total", "aw_attr_ticks_total", "aw_tenant_watts"} {
		if !strings.Contains(string(snap), want) {
			t.Fatalf("metrics snapshot missing %s", want)
		}
	}
}

// The -retire schedule garbage-collects every retired tenant's labels from
// the exposition — the property the CI cardinality gate greps for.
func TestRetirementSchedulePrunesLabels(t *testing.T) {
	reg := obs.NewRegistry()
	o := testOptions()
	o.retire = 5
	c, err := buildCollector(o, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(60) // lifetimeFor retires tenants 0-4 by tick 59

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	for _, gone := range []string{"tenant-0000", "tenant-0001", "tenant-0004"} {
		if strings.Contains(exp, gone) {
			t.Fatalf("retired tenant %s survived exposition", gone)
		}
	}
	if !strings.Contains(exp, "tenant-0005") {
		t.Fatal("immortal tenant missing from exposition")
	}
	if c.Live() != 7 {
		t.Fatalf("live %d, want 7", c.Live())
	}
}

func TestLifetimeSchedule(t *testing.T) {
	if lifetimeFor(3, 3) != 0 || lifetimeFor(0, 0) != 0 {
		t.Fatal("tenants beyond -retire must be immortal")
	}
	for i := 0; i < 200; i++ {
		lt := lifetimeFor(200, i)
		if lt < 10 || lt > 59 {
			t.Fatalf("tenant %d lifetime %d outside [10, 59]", i, lt)
		}
	}
}

func TestMuxSurface(t *testing.T) {
	reg := obs.NewRegistry()
	o := testOptions()
	c, err := buildCollector(o, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(3)

	st := &state{archName: o.archName, tenants: o.tenants}
	st.ticks.Store(c.Ticks())
	st.live.Store(int64(c.Live()))
	srv := httptest.NewServer(newMux(reg, st))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "aw_tenant_joules_total") {
		t.Fatalf("/metrics = %d:\n%.300s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"ticks":3`) {
		t.Fatalf("/healthz = %d: %s", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path not 404")
	}
}
