// Command awmeterd is the continuous energy-attribution daemon: the
// Kepler-style long-running collector the batch pipeline lacks. It samples
// synthetic counter feeds from a fleet of tenants every tick, evaluates
// each sample through the zero-allocation batch estimator, integrates
// power into a per-tenant joules ledger split by idle/active power domain,
// and serves the result as a bounded Prometheus exposition:
//
//	awmeterd -addr :9768 -arch volta -tenants 256
//	curl localhost:9768/metrics | grep aw_tenant_joules_total
//	awmeterd -once -ticks 500 -tenants 1000 -retire 200   # CI cardinality gate
//
// Attribution is deterministic: same -seed, same fleet history, bit for
// bit, at any -workers setting and under any -faults chaos profile. Tenant
// metric series are capped at -max-tenant-series (beyond the cap, energy
// is conserved on a shared overflow series) and retired tenants' labels
// are garbage-collected from the exposition. SIGINT/SIGTERM settles every
// tenant's partial attribution window into the ledger, writes the final
// metrics snapshot, and flushes artifacts with run_end reason "sigterm".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"accelwattch/internal/attr"
	"accelwattch/internal/cli"
	"accelwattch/internal/config"
	"accelwattch/internal/core"
	"accelwattch/internal/faults"
	"accelwattch/internal/obs"
)

// options is the daemon's parsed configuration, separated from flag
// plumbing so tests can build collectors exactly as main does.
type options struct {
	archName  string
	modelPath string
	tenants   int
	workers   int
	seed      int64
	tick      time.Duration // virtual sampling-window length
	window    int
	maxSeries int
	faultName string
	faultSeed int64
	retire    int
}

// lifetimeFor is the deterministic retirement schedule behind -retire n:
// the first n tenants retire between ticks 10 and 59, staggered by index,
// so any run of 60+ ticks exercises label GC. Everyone else is immortal.
func lifetimeFor(retire, i int) int64 {
	if i >= retire {
		return 0
	}
	return int64(10 + i%50)
}

// buildCollector assembles the attribution collector from daemon options.
func buildCollector(o options, reg *obs.Registry) (*attr.Collector, error) {
	arch, err := config.ByName(o.archName)
	if err != nil {
		return nil, err
	}
	var model *core.Model
	if o.modelPath != "" {
		if model, err = core.LoadModel(o.modelPath); err != nil {
			return nil, err
		}
	} else if model, err = attr.ReferenceModel(arch); err != nil {
		return nil, err
	}
	prof, err := faults.Named(o.faultName, o.faultSeed)
	if err != nil {
		return nil, err
	}
	cfg := attr.Config{
		Model:           model,
		Registry:        reg,
		Tenants:         o.tenants,
		Workers:         o.workers,
		Seed:            o.seed,
		TickSeconds:     o.tick.Seconds(),
		WindowTicks:     o.window,
		MaxTenantSeries: o.maxSeries,
	}
	if prof.Enabled() {
		cfg.Chaos = &prof
	}
	if o.retire > 0 {
		r := o.retire
		cfg.LifetimeTicks = func(i int) int64 { return lifetimeFor(r, i) }
	}
	return attr.New(cfg)
}

// shutdownFlush is the daemon's exit path, shared by -once and the signal
// handler: settle every tenant's partial attribution window into the
// ledger, write the final metrics snapshot, and flush run artifacts with
// the given close reason. Every integrated joule is accounted for before
// the process exits.
func shutdownFlush(c *attr.Collector, reg *obs.Registry, run *cli.Run, metricsOut, reason string) error {
	c.Flush()
	var first error
	if metricsOut != "" {
		if err := reg.WriteJSONFile(metricsOut); err != nil {
			first = err
		} else {
			run.Log.Info("wrote metrics snapshot", "path", metricsOut)
		}
	}
	if err := run.CloseReason(reason); err != nil && first == nil {
		first = err
	}
	return first
}

// state is what /healthz reports; mirrored out of the collector after each
// tick because the collector itself is single-goroutine.
type state struct {
	archName string
	tenants  int
	ticks    atomic.Int64
	live     atomic.Int64
}

func (st *state) serveHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":  "ok",
		"arch":    st.archName,
		"tenants": st.tenants,
		"live":    st.live.Load(),
		"ticks":   st.ticks.Load(),
	})
}

func (st *state) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, "awmeterd: continuous energy attribution for %s (%d tenants)\n"+
		"/metrics       Prometheus text exposition (per-tenant joules/watts)\n"+
		"/healthz       JSON health probe\n"+
		"/debug/pprof/  Go profiling endpoints\n", st.archName, st.tenants)
}

// newMux assembles the daemon's HTTP surface, factored out for tests.
func newMux(reg *obs.Registry, st *state) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", st.serveHealth)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", st.serveIndex)
	return mux
}

func main() {
	var (
		addr      = flag.String("addr", ":9768", "HTTP listen address")
		archName  = flag.String("arch", "volta", "architecture to attribute on (volta, pascal, turing)")
		modelPath = flag.String("model", "", "power model file (accelwattch-model-v1 JSON); default is the untuned reference model")
		tenants   = flag.Int("tenants", 256, "synthetic tenant fleet size")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "sampling worker count (attribution is identical at any setting)")
		seed      = flag.Int64("seed", 1, "deterministic seed for the tenant feeds")
		tick      = flag.Duration("tick", time.Millisecond, "virtual length of one sampling window")
		interval  = flag.Duration("interval", 10*time.Millisecond, "wall-clock period between sampling ticks (0 = free-run)")
		ticks     = flag.Int("ticks", 500, "ticks to run in -once mode")
		window    = flag.Int("window", 100, "ticks per attribution-ledger window event (0 = final flush only)")
		maxSeries = flag.Int("max-tenant-series", attr.DefaultMaxTenantSeries,
			"cardinality cap: max dedicated tenant label values; the excess shares one overflow series")
		faultName = flag.String("faults", "off", "perturb the counter feeds with a deterministic chaos profile ("+
			strings.Join(faults.Names(), ", ")+")")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the chaos profile")
		retire    = flag.Int("retire", 0, "retire the first n tenants mid-run on a fixed schedule (exercises label GC)")
		ledgerCap = flag.Int("ledger-cap", 65536, "attribution-ledger retention in events (0 = unbounded; unsafe for long runs)")
		once      = flag.Bool("once", false, "run -ticks sampling ticks, print /metrics output to stdout, and exit")
		out       = flag.String("metrics-out", "", "write the JSON telemetry snapshot to this file on exit")
	)
	traceOut, ledgerOut := cli.Artifacts()
	flag.Parse()

	o := options{
		archName: *archName, modelPath: *modelPath, tenants: *tenants,
		workers: *workers, seed: *seed, tick: *tick, window: *window,
		maxSeries: *maxSeries, faultName: *faultName, faultSeed: *faultSeed,
		retire: *retire,
	}
	run := cli.StartCapped("awmeterd",
		fmt.Sprintf("%s tenants=%d faults=%s", *archName, *tenants, *faultName),
		*traceOut, *ledgerOut, *ledgerCap)
	reg := obs.Default()
	obs.RegisterRuntimeMetrics(reg)

	c, err := buildCollector(o, reg)
	if err != nil {
		run.Fatal(err)
	}
	defer c.Close()

	if *once {
		c.Run(*ticks)
		if err := shutdownFlush(c, reg, run, *out, "ok"); err != nil {
			run.Log.Error("flush", "err", err)
			os.Exit(1)
		}
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "awmeterd: %v\n", err)
			os.Exit(1)
		}
		return
	}

	st := &state{archName: *archName, tenants: *tenants}
	httpSrv := &http.Server{Addr: *addr, Handler: newMux(reg, st)}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		var tickc <-chan time.Time
		if *interval > 0 {
			t := time.NewTicker(*interval)
			defer t.Stop()
			tickc = t.C
		}
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			if tickc != nil {
				select {
				case <-ctx.Done():
					return
				case <-tickc:
				}
			}
			c.Tick()
			st.ticks.Store(c.Ticks())
			st.live.Store(int64(c.Live()))
		}
	}()

	run.Log.Info("attributing", "arch", *archName, "addr", *addr,
		"tenants", *tenants, "workers", *workers, "faults", *faultName)
	select {
	case <-ctx.Done():
		run.Log.Info("signal received; settling attribution windows")
	case err := <-errc:
		run.Fatal(err)
	}
	stop()
	<-loopDone

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		run.Log.Error("http shutdown", "err", err)
	}
	if err := shutdownFlush(c, reg, run, *out, "sigterm"); err != nil {
		run.Log.Error("writing artifacts", "err", err)
		os.Exit(1)
	}
}
