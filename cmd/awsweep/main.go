// Command awsweep runs the hardware-characterisation sweeps of Sections
// 4.2-4.6 on the synthetic silicon and prints the series behind Figures 2,
// 3, 4 and 5: total power versus frequency with Eq. (3) fits, the
// power-gating lane/SM ladder, the divergence sawtooth, and the idle-SM
// sweep.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"text/tabwriter"

	"accelwattch/internal/cli"
	"accelwattch/internal/config"
	"accelwattch/internal/core"
	"accelwattch/internal/obs"
	"accelwattch/internal/tune"
	"accelwattch/internal/ubench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("awsweep: ")
	var (
		archName   = flag.String("arch", "volta", "target architecture (volta, pascal, turing)")
		exp        = flag.String("exp", "all", "experiment: dvfs, gating, divergence, idlesm, or all")
		full       = flag.Bool("full", false, "use the full-fidelity workload scale")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "execution-engine worker count (results are identical at any setting)")
		strict     = flag.Bool("strict", false, "exit non-zero on partial failure (any quarantined workload)")
		metricsOut = flag.String("metrics-out", "", "write the JSON telemetry snapshot (metrics + stage spans) to this file")
	)
	shards := cli.ShardFlags()
	traceOut, ledgerOut := cli.Artifacts()
	flag.Parse()

	arch, err := config.ByName(*archName)
	if err != nil {
		log.Fatal(err)
	}
	sc := ubench.Quick
	if *full {
		sc = ubench.Full
	}
	obsRun := cli.Start("awsweep", arch.Name+" exp="+*exp, *traceOut, *ledgerOut)
	tb, err := tune.NewTestbench(arch, sc)
	if err != nil {
		obsRun.Fatal(err)
	}
	if shards.Enabled() {
		d, err := shards.Dispatcher(nil)
		if err != nil {
			obsRun.Fatal(err)
		}
		defer d.Close()
		tb.UseShards(nil, d)
		fmt.Printf("offloading measurements to worker shards %s (net faults %q)\n",
			shards.Addrs, shards.NetProfile)
	}
	ex, err := tune.NewExec(nil, tb, *workers)
	if err != nil {
		obsRun.Fatal(err)
	}

	run := func(name string, f func(*tune.Exec) error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(ex); err != nil {
			obsRun.Fatalf("%s: %v", name, err)
		}
	}
	run("dvfs", sweepDVFS)
	run("gating", sweepGating)
	run("divergence", sweepDivergence)
	run("idlesm", sweepIdleSM)

	if *metricsOut != "" {
		if err := obs.Default().WriteJSONFile(*metricsOut); err != nil {
			obsRun.Fatal(err)
		}
		fmt.Printf("wrote the telemetry snapshot to %s\n", *metricsOut)
	}
	if err := obsRun.Close(); err != nil {
		log.Fatal(err)
	}
	if q := tb.Quarantined(); *strict && len(q) > 0 {
		fmt.Println("== strict mode: quarantined workloads ==")
		for _, name := range q {
			fmt.Println("  " + name)
		}
		os.Exit(1)
	}
}

func sweepDVFS(ex *tune.Exec) error {
	tb := ex.TB()
	fmt.Println("== Figure 2: total power vs core clock, with Eq.(3) fits ==")
	res, err := ex.EstimateConstPower(tune.DefaultSweep(tb.Arch.MinClockMHz+65, tb.Arch.MaxClockMHz))
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tf(GHz)->P(W)\tbeta\ttau\tintercept\tfit MAPE")
	for _, c := range res.Curves {
		fmt.Fprintf(w, "%s\t", c.Name)
		for i := range c.FreqGHz {
			fmt.Fprintf(w, "%.1f:%.0f ", c.FreqGHz[i], c.PowerW[i])
		}
		fmt.Fprintf(w, "\t%.1f\t%.1f\t%.1f\t%.2f%%\n", c.Fit.Beta, c.Fit.Tau, c.Fit.Const, c.FitMAPE)
	}
	w.Flush()
	fmt.Printf("constant power estimate: %.2f W (paper: 32.5 W on GV100)\n", res.ConstW)
	fmt.Printf("legacy linear-extrapolation estimate: %.2f W (methodology the paper retires)\n\n", res.LegacyConstW)
	return nil
}

func sweepGating(ex *tune.Exec) error {
	tb := ex.TB()
	fmt.Println("== Figure 3: power-gating lane/SM activation ladder ==")
	n := tb.Arch.NumSMs
	configs := []struct {
		name       string
		sms, lanes int
	}{
		{"1 Lane x 1 SM", 1, 1},
		{fmt.Sprintf("1 Lane x %d SMs", n), n, 1},
		{fmt.Sprintf("8 Lanes x %d SMs", n), n, 8},
		{fmt.Sprintf("16 Lanes x %d SMs", n), n, 16},
		{fmt.Sprintf("24 Lanes x %d SMs", n), n, 24},
		{fmt.Sprintf("32 Lanes x %d SMs", n), n, 32},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tpower (W)")
	fmt.Fprintf(w, "Inactive Chip\t%.1f\n", tb.Device.MeasureIdle().AvgPowerW)
	var first float64
	for i, c := range configs {
		b := ubench.GatingBench(tb.Arch, tb.Scale, c.sms, c.lanes)
		m, err := tb.Measure(tune.FromBench(b), 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%.1f\n", c.name, m.AvgPowerW)
		if i == 0 {
			first = m.AvgPowerW
		}
		if i == 1 {
			fmt.Fprintf(w, "  (ratio to 1Lx1SM: %.2f; paper: ~1.7)\t\n", m.AvgPowerW/first)
		}
	}
	w.Flush()
	fmt.Println()
	return nil
}

func sweepDivergence(ex *tune.Exec) error {
	tb := ex.TB()
	fmt.Println("== Figure 4: power vs active threads per warp ==")
	mixes := []core.MixCategory{core.MixIntMul, core.MixIntFP, core.MixIntFPSFU}
	var tasks []func(*tune.Testbench) error
	for _, mix := range mixes {
		for y := 4; y <= 32; y += 4 {
			b := ubench.DivergenceBench(tb.Arch, tb.Scale, mix, y)
			tasks = append(tasks, func(r *tune.Testbench) error {
				_, err := r.Measure(tune.FromBench(b), 0)
				return err
			})
		}
	}
	if err := ex.Warm(tasks); err != nil {
		return err
	}
	for _, mix := range mixes {
		fmt.Printf("%s:", mix)
		for y := 4; y <= 32; y += 4 {
			b := ubench.DivergenceBench(tb.Arch, tb.Scale, mix, y)
			m, err := tb.Measure(tune.FromBench(b), 0)
			if err != nil {
				return err
			}
			fmt.Printf("  y=%d:%.1fW", y, m.AvgPowerW)
		}
		fmt.Println()
	}
	fmt.Println("(INT_MUL dips after y=16: the half-warp sawtooth; mixes flatten to linear)")
	fmt.Println()
	return nil
}

func sweepIdleSM(ex *tune.Exec) error {
	tb := ex.TB()
	fmt.Println("== Figure 5: power vs idle SM count (INT_MUL) ==")
	n := tb.Arch.NumSMs
	ladder := []int{n, 3 * n / 4, n / 2, n / 4, n / 8, 1}
	var tasks []func(*tune.Testbench) error
	for _, active := range ladder {
		b := ubench.OccupancyBench(tb.Arch, tb.Scale, active)
		tasks = append(tasks, func(r *tune.Testbench) error {
			_, err := r.Measure(tune.FromBench(b), 0)
			return err
		})
	}
	if err := ex.Warm(tasks); err != nil {
		return err
	}
	for _, active := range ladder {
		b := ubench.OccupancyBench(tb.Arch, tb.Scale, active)
		m, err := tb.Measure(tune.FromBench(b), 0)
		if err != nil {
			return err
		}
		fmt.Printf("  idle=%2d active=%2d: %.1f W\n", n-active, active, m.AvgPowerW)
	}
	fmt.Println()
	return nil
}
