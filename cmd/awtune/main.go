// Command awtune runs the complete AccelWattch model-construction flow of
// Figure 1 — DVFS constant-power estimation, divergence-aware static
// modelling, idle-SM modelling, and quadratic-programming dynamic tuning
// for all four variants — and prints the resulting model.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"

	"accelwattch"
	"accelwattch/internal/cli"
	"accelwattch/internal/core"
	"accelwattch/internal/obs"
	"accelwattch/internal/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("awtune: ")
	var (
		archName  = flag.String("arch", "volta", "architecture to tune for (volta, pascal, turing)")
		full      = flag.Bool("full", false, "use the full-fidelity workload scale")
		outPath   = flag.String("o", "", "save the tuned SASS SIM model as a JSON config file")
		faultName = flag.String("faults", "off", "inject power-meter faults while tuning ("+
			strings.Join(accelwattch.NamedFaultProfiles(), ", ")+")")
		faultSeed  = flag.Int64("fault-seed", 1, "deterministic seed for the fault injector")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "execution-engine worker count (results are identical at any setting)")
		metricsOut = flag.String("metrics-out", "", "write the JSON telemetry snapshot (metrics + stage spans) to this file")
	)
	shards := cli.ShardFlags()
	traceOut, ledgerOut := cli.Artifacts()
	flag.Parse()

	var arch *accelwattch.Arch
	switch *archName {
	case "volta":
		arch = accelwattch.Volta()
	case "pascal":
		arch = accelwattch.Pascal()
	case "turing":
		arch = accelwattch.Turing()
	default:
		log.Fatalf("unknown architecture %q", *archName)
	}
	sc := accelwattch.Quick
	if *full {
		sc = accelwattch.Full
	}

	prof, err := accelwattch.NamedFaultProfile(*faultName, *faultSeed)
	if err != nil {
		log.Fatal(err)
	}
	run := cli.Start("awtune", arch.Name+" faults="+*faultName, *traceOut, *ledgerOut)

	fmt.Printf("tuning AccelWattch for %s (%d SMs, %d nm, base %.0f MHz)...\n",
		arch.Name, arch.NumSMs, arch.TechNodeNM, arch.BaseClockMHz)
	if prof.Enabled() {
		fmt.Printf("injecting %q power-meter faults (seed %d); hardened measurement policy\n",
			*faultName, *faultSeed)
	}
	opts := accelwattch.SessionOptions{Faults: &prof, Workers: *workers}
	if shards.Enabled() {
		d, err := shards.Dispatcher(nil)
		if err != nil {
			run.Fatal(err)
		}
		defer d.Close()
		opts.Shards = d
		fmt.Printf("offloading measurements to worker shards %s (net faults %q)\n",
			shards.Addrs, shards.NetProfile)
	}
	sess, err := accelwattch.NewSessionWithOptions(arch, sc, opts)
	if err != nil {
		run.Fatal(err)
	}
	res := sess.Tuned()

	fmt.Printf("\n== constant power (Section 4.2) ==\n")
	fmt.Printf("P_const = %.2f W  (Eq. 3 y-intercepts; legacy linear method: %.2f W)\n",
		res.ConstPower.ConstW, res.ConstPower.LegacyConstW)

	fmt.Printf("\n== divergence-aware static models (Sections 4.4-4.5) ==\n")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mix\tfirst-lane (W)\t32-lane (W)\tmodel")
	for _, f := range res.DivFits {
		model := "linear"
		if f.HalfWarp {
			model = "half-warp"
		}
		fmt.Fprintf(w, "%v\t%.2f\t%.2f\t%s\n", f.Mix, f.StaticFirstLaneW, f.Static32LanesW, model)
	}
	w.Flush()

	fmt.Printf("\n== idle SM (Section 4.6) ==\nP_perIdleSM = %.3f W (geomean of %d estimates)\n",
		res.IdleSM.PerIdleSMW, len(res.IdleSM.Estimates))

	fmt.Printf("\n== temperature factor (Section 4.1) ==\nstatic power x exp(%.4f * (T - 65C))\n",
		res.Temperature.Coeff)

	fmt.Printf("\n== dynamic tuning (Section 5.4) ==\n")
	for _, v := range tune.Variants() {
		fmt.Printf("%-9v adopted %-5v start: train MAPE %.2f%% (other start %v: %.2f%%)\n",
			v, res.BestFits[v].Start, res.BestFits[v].TrainMAPE,
			res.OtherFits[v].Start, res.OtherFits[v].TrainMAPE)
	}

	fmt.Printf("\n== tuned per-access energies, SASS SIM (pJ) ==\n")
	m := sess.Model(accelwattch.SASSSIM)
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "component\tinitial\tscale\teffective")
	for _, c := range core.DynComponents() {
		fmt.Fprintf(w, "%v\t%.1f\t%.4f\t%.2f\n", c, m.BaseEnergyPJ[c], m.Scale[c], m.EffectiveEnergyPJ(c))
	}
	w.Flush()

	if st, ok := sess.FaultStats(); ok {
		fmt.Printf("\n== meter fault report ==\n")
		fmt.Printf("%d reads: %d transient errors, %d stuck, %d spikes, %d dropped samples\n",
			st.Reads, st.TransientErrors, st.StuckReads, st.Spikes, st.DroppedSamples)
	}
	if q := sess.Quarantined(); len(q) > 0 {
		fmt.Printf("\n== quarantined workloads ==\n")
		for _, name := range q {
			fmt.Printf("  %s\n", name)
		}
	}

	if *outPath != "" {
		// Record which variant this model was tuned under: serving layers
		// use the tag to refuse (or loudly warn about) answering for a
		// variant the model was never validated against.
		m.TunedVariant = accelwattch.SASSSIM.String()
		if err := m.Save(*outPath); err != nil {
			run.Fatal(err)
		}
		fmt.Printf("\nsaved the tuned SASS SIM model to %s (tuned variant %s)\n", *outPath, m.TunedVariant)
	}
	if *metricsOut != "" {
		if err := obs.Default().WriteJSONFile(*metricsOut); err != nil {
			run.Fatal(err)
		}
		fmt.Printf("wrote the telemetry snapshot to %s\n", *metricsOut)
	}
	if err := run.Close(); err != nil {
		log.Fatal(err)
	}
}
