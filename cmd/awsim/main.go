// Command awsim estimates the power of a user-supplied kernel — the
// "experiment customisation" path of the artifact appendix. The kernel is
// written in the textual assembly format of internal/isa (see -example for
// a template), compiled to SASS, run through the performance simulator, and
// priced with the tuned AccelWattch model.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"accelwattch"
	"accelwattch/internal/core"
)

const exampleKernel = `.kernel saxpy_like
.grid 80
.block 256

    S2R R1, gtid
    SHL R2, R1, 2
    IADD R3, R2, 4194304      # x[]
    IADD R4, R2, 8388608      # y[]
    MOVI R5, 1069547520       # a = 1.5f
    MOVI R6, 24               # trip count
loop:
    LDG R7, [R3]
    LDG R8, [R4]
    FFMA R9, R7, R5, R8
    STG [R4], R9
    ADD.S64 R3, R3, 81920
    ADD.S64 R4, R4, 81920
    IADD R6, R6, -1
    ISETP.gt P0, R6, 0
@P0 BRA loop
    EXIT
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("awsim: ")
	var (
		file    = flag.String("f", "", "kernel assembly file (omit with -example)")
		example = flag.Bool("example", false, "run the built-in example kernel")
		showAsm = flag.Bool("print", false, "print the example kernel source and exit")
		variant = flag.String("variant", "sass", "power-model variant: sass or ptx")
		trace   = flag.Bool("trace", false, "print the cycle-level power trace")
		full    = flag.Bool("full", false, "tune at full fidelity")
		modelIn = flag.String("model", "", "load a saved model config (from awtune -o) instead of retuning the dynamic energies")
	)
	flag.Parse()

	if *showAsm {
		fmt.Print(exampleKernel)
		return
	}
	var src string
	switch {
	case *example:
		src = exampleKernel
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
	default:
		log.Fatal("provide -f kernel.asm or -example (use -print for a template)")
	}

	k, err := accelwattch.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	v := accelwattch.SASSSIM
	if *variant == "ptx" {
		v = accelwattch.PTXSIM
	}
	sc := accelwattch.Quick
	if *full {
		sc = accelwattch.Full
	}

	fmt.Println("tuning the Volta model (cached per process)...")
	sess, err := accelwattch.SharedSession(accelwattch.Volta(), sc)
	if err != nil {
		log.Fatal(err)
	}
	if *modelIn != "" {
		m, err := core.LoadModel(*modelIn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("using the saved model from %s\n", *modelIn)
		sess.SetModel(v, m)
	}

	bd, err := sess.EstimateKernel(k, nil, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkernel %s: grid %d x block %d, %d static instructions\n",
		k.Name, k.Grid.X, k.Block.X, len(k.Code))
	fmt.Printf("estimated power (%v): %.1f W\n\n", v, bd.Total())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "component\twatts\tshare")
	for _, c := range bd.Top(core.NumComponents) {
		if bd.Watts[c] < 0.05 {
			continue
		}
		fmt.Fprintf(w, "%v\t%.2f\t%.1f%%\n", c, bd.Watts[c], 100*bd.Watts[c]/bd.Total())
	}
	w.Flush()

	if *trace {
		series, avg, err := sess.PowerTrace(k, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncycle-level power trace (%d windows of 500 cycles, avg %.1f W):\n", len(series), avg)
		for i, p := range series {
			fmt.Printf("  window %3d: %.1f W\n", i, p)
			if i >= 19 && len(series) > 22 {
				fmt.Printf("  ... (%d more windows)\n", len(series)-i-1)
				break
			}
		}
	}
}
