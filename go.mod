module accelwattch

go 1.22
