package accelwattch

import (
	"math"
	"testing"
)

// tinyScale keeps the determinism suite fast enough to run at two worker
// counts, twice (clean and chaos meters), under the race detector.
var parallelScale = Scale{Iters: 2, Unroll: 1, WarpsPerCTA: 2}

func tuneAt(t *testing.T, workers int, faults *FaultProfile) (*Session, map[Variant]*ValidationResult) {
	t.Helper()
	sess, err := NewSessionWithOptions(Volta(), parallelScale,
		SessionOptions{Workers: workers, Faults: faults})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	all, err := sess.ValidateAll()
	if err != nil {
		t.Fatalf("workers=%d: validate: %v", workers, err)
	}
	return sess, all
}

// expectIdentical compares two tuning+validation outcomes coefficient for
// coefficient and kernel for kernel. Comparisons are exact (==): the engine
// contract is bit-identical output at every worker count, not merely close.
func expectIdentical(t *testing.T, seq, par *Session, seqV, parV map[Variant]*ValidationResult) {
	t.Helper()
	a, b := seq.Tuned(), par.Tuned()
	if a.ConstPower.ConstW != b.ConstPower.ConstW {
		t.Errorf("ConstW: %v vs %v", a.ConstPower.ConstW, b.ConstPower.ConstW)
	}
	if a.ConstPower.LegacyConstW != b.ConstPower.LegacyConstW {
		t.Errorf("LegacyConstW: %v vs %v", a.ConstPower.LegacyConstW, b.ConstPower.LegacyConstW)
	}
	if a.IdleSM.PerIdleSMW != b.IdleSM.PerIdleSMW {
		t.Errorf("PerIdleSMW: %v vs %v", a.IdleSM.PerIdleSMW, b.IdleSM.PerIdleSMW)
	}
	if a.Temperature.Coeff != b.Temperature.Coeff {
		t.Errorf("temperature coeff: %v vs %v", a.Temperature.Coeff, b.Temperature.Coeff)
	}
	if len(a.DivFits) != len(b.DivFits) {
		t.Fatalf("DivFits length: %d vs %d", len(a.DivFits), len(b.DivFits))
	}
	for i := range a.DivFits {
		if a.DivFits[i].Model != b.DivFits[i].Model || a.DivFits[i].HalfWarp != b.DivFits[i].HalfWarp {
			t.Errorf("DivFits[%d]: %+v vs %+v", i, a.DivFits[i], b.DivFits[i])
		}
	}
	for _, v := range []Variant{SASSSIM, PTXSIM, HW, HYBRID} {
		if a.BestFits[v].Start != b.BestFits[v].Start || a.BestFits[v].TrainMAPE != b.BestFits[v].TrainMAPE {
			t.Errorf("%v best fit: %+v vs %+v", v, a.BestFits[v], b.BestFits[v])
		}
		if a.Models[v].Scale != b.Models[v].Scale {
			t.Errorf("%v scale vectors differ:\n  seq %v\n  par %v", v, a.Models[v].Scale, b.Models[v].Scale)
		}
	}
	if len(a.Quarantined) != len(b.Quarantined) {
		t.Fatalf("quarantine lists differ in length:\n  seq %v\n  par %v", a.Quarantined, b.Quarantined)
	}
	for i := range a.Quarantined {
		if a.Quarantined[i] != b.Quarantined[i] {
			t.Errorf("quarantine[%d]: %q vs %q", i, a.Quarantined[i], b.Quarantined[i])
		}
	}

	for _, v := range []Variant{SASSSIM, PTXSIM, HW, HYBRID} {
		rs, rp := seqV[v], parV[v]
		if rs.MAPE != rp.MAPE || rs.MaxAPE != rp.MaxAPE || rs.Pearson != rp.Pearson {
			t.Errorf("%v aggregates: MAPE %v/%v MaxAPE %v/%v r %v/%v",
				v, rs.MAPE, rp.MAPE, rs.MaxAPE, rp.MaxAPE, rs.Pearson, rp.Pearson)
		}
		if len(rs.Kernels) != len(rp.Kernels) {
			t.Fatalf("%v kernel counts: %d vs %d", v, len(rs.Kernels), len(rp.Kernels))
		}
		for i := range rs.Kernels {
			ks, kp := rs.Kernels[i], rp.Kernels[i]
			if ks.Name != kp.Name || ks.MeasuredW != kp.MeasuredW || ks.EstimatedW != kp.EstimatedW {
				t.Errorf("%v kernel %d: %s %v/%v W vs %s %v/%v W",
					v, i, ks.Name, ks.MeasuredW, ks.EstimatedW, kp.Name, kp.MeasuredW, kp.EstimatedW)
			}
			// The attribution must match component for component, not just in
			// total: a parallelism bug that shuffled watts between components
			// while preserving the sum would still be a broken model.
			if ks.Breakdown != kp.Breakdown {
				t.Errorf("%v kernel %s: breakdowns differ:\n  seq %v\n  par %v",
					v, ks.Name, ks.Breakdown.Watts, kp.Breakdown.Watts)
			}
		}
	}
}

// TestParallelTuneBitIdenticalClean: the full tune + four-variant validation
// at workers=8 must equal workers=1 exactly on a clean meter.
func TestParallelTuneBitIdenticalClean(t *testing.T) {
	if testing.Short() {
		t.Skip("two full tunes")
	}
	seq, seqV := tuneAt(t, 1, nil)
	par, parV := tuneAt(t, 8, nil)
	expectIdentical(t, seq, par, seqV, parV)
	if seq.Workers() != 1 || par.Workers() != 8 {
		t.Errorf("worker counts: %d and %d", seq.Workers(), par.Workers())
	}
}

// TestParallelTuneBitIdenticalChaos repeats the bit-identity assertion with
// the harshest canned fault profile active: per-point fault RNG makes the
// injected fault sequence a function of (seed, operating point, attempt),
// never of goroutine scheduling.
func TestParallelTuneBitIdenticalChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("two full tunes through a faulty meter")
	}
	profSeq, err := NamedFaultProfile("chaos", 99)
	if err != nil {
		t.Fatal(err)
	}
	profPar := profSeq
	seq, seqV := tuneAt(t, 1, &profSeq)
	par, parV := tuneAt(t, 8, &profPar)
	expectIdentical(t, seq, par, seqV, parV)

	// The meters must also have injected the identical fault load: stats
	// aggregate across replicas through the shared fault state.
	ss, ok1 := seq.FaultStats()
	ps, ok2 := par.FaultStats()
	if !ok1 || !ok2 {
		t.Fatal("fault-injected sessions must report fault stats")
	}
	if ss != ps {
		t.Errorf("fault stats diverged:\n  seq %+v\n  par %+v", ss, ps)
	}
}

// TestParallelValidationFinite guards the satellite NaN contract end to end:
// no validation aggregate may come back ±Inf even at high parallelism.
func TestParallelValidationFinite(t *testing.T) {
	if testing.Short() {
		t.Skip("full tune")
	}
	_, all := tuneAt(t, 8, nil)
	for v, r := range all {
		if math.IsInf(r.MAPE, 0) || math.IsInf(r.MaxAPE, 0) {
			t.Errorf("%v: infinite aggregate (MAPE %v, MaxAPE %v)", v, r.MAPE, r.MaxAPE)
		}
		for _, k := range r.Kernels {
			if math.IsInf(k.RelErrPct(), 0) {
				t.Errorf("%v/%s: RelErrPct is infinite", v, k.Name)
			}
		}
	}
}
